package quicfast

import (
	"bytes"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

var testPSK = []byte("0123456789abcdef0123456789abcdef")

type collected struct {
	mu   sync.Mutex
	msgs []Message
}

func (c *collected) add(m Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := append([]byte(nil), m.Payload...)
	m.Payload = p
	c.msgs = append(c.msgs, m)
}

func (c *collected) wait(t *testing.T, n int) []Message {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := append([]Message(nil), c.msgs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d messages", n)
	return nil
}

// pair starts a server and returns a connected client plus the sink.
func pair(t *testing.T, psk []byte) (*Client, *Server, *collected) {
	t.Helper()
	sconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &collected{}
	srv := NewServer(sconn, testPSK, sink.add, WithServerRand(rand.New(rand.NewSource(1))))
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })

	cconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cconn.Close() })
	cli := NewClient(cconn, sconn.LocalAddr(), psk,
		WithClientRand(rand.New(rand.NewSource(2))), WithTimeout(300*time.Millisecond))
	return cli, srv, sink
}

func TestHandshakeAndSend(t *testing.T) {
	cli, srv, sink := pair(t, testPSK)
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Send([]byte("attestation-1")); err != nil {
		t.Fatal(err)
	}
	msgs := sink.wait(t, 1)
	if string(msgs[0].Payload) != "attestation-1" || msgs[0].ZeroRTT {
		t.Fatalf("msg = %+v", msgs[0])
	}
	if n := srv.StatsSnapshot().Handshakes; n != 1 {
		t.Fatalf("handshakes = %d", n)
	}
}

func TestMultipleSendsDistinctPayloads(t *testing.T) {
	cli, _, sink := pair(t, testPSK)
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cli.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	msgs := sink.wait(t, 5)
	for i, m := range msgs {
		if m.Payload[0] != byte(i) {
			t.Fatalf("message %d payload = %v", i, m.Payload)
		}
	}
}

func TestZeroRTTAfterHandshake(t *testing.T) {
	cli, srv, sink := pair(t, testPSK)
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
	if !cli.CanZeroRTT() {
		t.Fatal("no ticket after handshake")
	}
	if err := cli.SendZeroRTT([]byte("early-data")); err != nil {
		t.Fatal(err)
	}
	msgs := sink.wait(t, 1)
	if !msgs[0].ZeroRTT || string(msgs[0].Payload) != "early-data" {
		t.Fatalf("msg = %+v", msgs[0])
	}
	if n := srv.StatsSnapshot().ZeroRTT; n != 1 {
		t.Fatalf("zero-rtt count = %d", n)
	}
}

func TestZeroRTTWithoutTicketFails(t *testing.T) {
	cli, _, _ := pair(t, testPSK)
	if err := cli.SendZeroRTT([]byte("x")); err != ErrUnknownTicket {
		t.Fatalf("err = %v, want ErrUnknownTicket", err)
	}
}

func TestWrongPSKRejectedAtHandshake(t *testing.T) {
	cli, srv, _ := pair(t, []byte("wrong-psk-wrong-psk-wrong-psk-00"))
	err := cli.Handshake()
	if err == nil {
		t.Fatal("handshake succeeded with wrong PSK")
	}
	if srv.StatsSnapshot().AuthFailures == 0 {
		t.Fatal("server did not count the auth failure")
	}
	if srv.StatsSnapshot().Handshakes != 0 {
		t.Fatal("server completed a handshake for an unauthorized client")
	}
}

func TestReplayedZeroRTTDatagramRejected(t *testing.T) {
	cli, srv, sink := pair(t, testPSK)
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
	pkt, err := cli.RawZeroRTTDatagram([]byte("open-garage"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Inject(pkt); err != nil {
		t.Fatal(err)
	}
	sink.wait(t, 1)
	// The attacker replays the identical bytes.
	for i := 0; i < 3; i++ {
		if err := cli.Inject(pkt); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && srv.Replays() < 3 {
		time.Sleep(time.Millisecond)
	}
	if srv.Replays() != 3 {
		t.Fatalf("replays rejected = %d, want 3", srv.Replays())
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.msgs) != 1 {
		t.Fatalf("handler saw %d messages, want 1", len(sink.msgs))
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	cli, srv, sink := pair(t, testPSK)
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
	pkt, err := cli.RawZeroRTTDatagram([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	pkt[len(pkt)-1] ^= 0xff
	if err := cli.Inject(pkt); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && srv.StatsSnapshot().AuthFailures == 0 {
		time.Sleep(time.Millisecond)
	}
	if srv.StatsSnapshot().AuthFailures == 0 {
		t.Fatal("tampered packet not rejected")
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.msgs) != 0 {
		t.Fatal("tampered packet delivered")
	}
}

func TestDataSurvivesPacketLoss(t *testing.T) {
	sconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &collected{}
	srv := NewServer(sconn, testPSK, sink.add, WithServerRand(rand.New(rand.NewSource(3))))
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })

	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lossy := &LatencyConn{PacketConn: raw, Delay: time.Millisecond, Loss: 0.3, Seed: 5}
	t.Cleanup(func() { _ = lossy.Close() })
	cli := NewClient(lossy, sconn.LocalAddr(), testPSK,
		WithClientRand(rand.New(rand.NewSource(4))), WithTimeout(150*time.Millisecond), WithRetries(10))
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Send([]byte("resilient")); err != nil {
		t.Fatal(err)
	}
	msgs := sink.wait(t, 1)
	if string(msgs[0].Payload) != "resilient" {
		t.Fatalf("payload = %q", msgs[0].Payload)
	}
}

func TestZeroRTTFasterThanHandshakePlusSend(t *testing.T) {
	// With a 20 ms one-way path, 1-RTT handshake + send costs >= 2 RTTs
	// while 0-RTT costs 1 RTT. This is the crux of Table 7.
	const oneWay = 20 * time.Millisecond
	sconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &collected{}
	srvSide := &LatencyConn{PacketConn: sconn, Delay: oneWay, Seed: 6}
	srv := NewServer(srvSide, testPSK, sink.add, WithServerRand(rand.New(rand.NewSource(7))))
	go func() { _ = srv.Serve() }()
	defer func() { _ = srv.Close() }()

	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cliSide := &LatencyConn{PacketConn: raw, Delay: oneWay, Seed: 8}
	defer func() { _ = cliSide.Close() }()
	cli := NewClient(cliSide, sconn.LocalAddr(), testPSK,
		WithClientRand(rand.New(rand.NewSource(9))), WithTimeout(2*time.Second))

	start := time.Now()
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Send([]byte("cold")); err != nil {
		t.Fatal(err)
	}
	coldPath := time.Since(start)

	start = time.Now()
	if err := cli.SendZeroRTT([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	warmPath := time.Since(start)

	if warmPath >= coldPath*2/3 {
		t.Fatalf("0-RTT (%v) not clearly faster than handshake+send (%v)", warmPath, coldPath)
	}
}

func TestSendBeforeHandshakeFails(t *testing.T) {
	cli, _, _ := pair(t, testPSK)
	if err := cli.Send([]byte("x")); err == nil {
		t.Fatal("Send before Handshake succeeded")
	}
}

func TestSecondHandshakeRotatesTicket(t *testing.T) {
	cli, _, _ := pair(t, testPSK)
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
	t1 := append([]byte(nil), cli.ticketID...)
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(t1, cli.ticketID) {
		t.Fatal("ticket not rotated across handshakes")
	}
}

func TestKeyScheduleDirectionSeparation(t *testing.T) {
	ks, err := deriveKeys([]byte("shared"), []byte("salt"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	aad := []byte("h")
	c := ks.clientAEAD.Seal(nil, nonceFor(ks.clientIV, 1), msg, aad)
	if _, err := ks.serverAEAD.Open(nil, nonceFor(ks.serverIV, 1), c, aad); err == nil {
		t.Fatal("server key opened client ciphertext")
	}
	if _, err := ks.clientAEAD.Open(nil, nonceFor(ks.clientIV, 2), c, aad); err == nil {
		t.Fatal("wrong packet number accepted")
	}
	if pt, err := ks.clientAEAD.Open(nil, nonceFor(ks.clientIV, 1), c, aad); err != nil || string(pt) != "m" {
		t.Fatalf("round trip failed: %v %q", err, pt)
	}
}

func TestNonceForDistinctPerPacket(t *testing.T) {
	var iv [12]byte
	seen := map[string]bool{}
	for i := uint32(0); i < 1000; i++ {
		n := string(nonceFor(iv, i))
		if seen[n] {
			t.Fatal("nonce reuse")
		}
		seen[n] = true
	}
}
