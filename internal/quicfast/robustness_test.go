package quicfast

import (
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestServerSurvivesGarbage floods the server with random datagrams, valid
// type bytes with junk bodies, and truncated packets: nothing may panic,
// nothing may be delivered to the handler, and a legitimate client must
// still work afterwards.
func TestServerSurvivesGarbage(t *testing.T) {
	sconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	srv := NewServer(sconn, testPSK, func(Message) { delivered.Add(1) },
		WithServerRand(rand.New(rand.NewSource(1))))
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	attacker, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		n := rng.Intn(300)
		pkt := make([]byte, n)
		rng.Read(pkt)
		if n > 0 && i%3 == 0 {
			// Force a known type byte so the typed handlers also run.
			types := []byte{ptInitial, ptReply, ptZeroRTT, ptData, ptAck}
			pkt[0] = types[rng.Intn(len(types))]
		}
		if _, err := attacker.WriteTo(pkt, sconn.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	if n := delivered.Load(); n != 0 {
		t.Fatalf("garbage delivered %d messages", n)
	}

	// The server still serves real clients.
	cconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cconn.Close()
	cli := NewClient(cconn, sconn.LocalAddr(), testPSK,
		WithClientRand(rand.New(rand.NewSource(3))), WithTimeout(500*time.Millisecond))
	if err := cli.Handshake(); err != nil {
		t.Fatalf("handshake after garbage flood: %v", err)
	}
	if err := cli.Send([]byte("still-alive")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && delivered.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if n := delivered.Load(); n != 1 {
		t.Fatalf("legitimate message not delivered after flood (delivered=%d)", n)
	}
}

// TestClientIgnoresForgedAcks checks the client does not accept an ack of
// the wrong type or with the wrong prefix.
func TestClientIgnoresForgedAcks(t *testing.T) {
	sconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sconn.Close()
	// A fake "server" that answers every datagram with garbage acks.
	go func() {
		buf := make([]byte, 2048)
		for {
			n, addr, err := sconn.ReadFrom(buf)
			if err != nil {
				return
			}
			_ = n
			junk := make([]byte, 64)
			junk[0] = ptAck
			_, _ = sconn.WriteTo(junk, addr)
		}
	}()
	cconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cconn.Close()
	cli := NewClient(cconn, sconn.LocalAddr(), testPSK,
		WithClientRand(rand.New(rand.NewSource(4))),
		WithTimeout(100*time.Millisecond), WithRetries(1))
	if err := cli.Handshake(); err == nil {
		t.Fatal("handshake succeeded against a garbage server")
	}
}
