package quicfast

import (
	"crypto/ecdh"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"io"
	"net"
	"sync"

	"fiat/internal/obs"
)

// Message is one decrypted application payload delivered to the server.
type Message struct {
	// Payload is the plaintext application data.
	Payload []byte
	// ZeroRTT reports whether it arrived as early data.
	ZeroRTT bool
	// Session identifies the sending session (connection or ticket ID).
	Session string
}

// Server is the proxy-side endpoint. It accepts PSK-authenticated
// handshakes, issues session tickets, decrypts 1-RTT and 0-RTT payloads,
// enforces anti-replay, and hands messages to the configured handler.
type Server struct {
	conn    net.PacketConn
	psk     []byte
	rand    io.Reader
	handler func(Message)

	mu       sync.Mutex
	sessions map[string]*serverSession // by connID
	tickets  map[string]*ticketState   // by ticketID
	closed   bool

	// Stats counts protocol events; it is guarded by mu. Read it via
	// StatsSnapshot while Serve is running.
	Stats ServerStats

	mx serverMetrics
}

// serverMetrics mirrors ServerStats into a registry (nil handles are no-ops
// until WithServerObs installs one), so the attestation transport shows up
// in the same snapshot as the decision pipeline.
type serverMetrics struct {
	handshakes   *obs.Counter
	messages     *obs.Counter
	zeroRTT      *obs.Counter
	replays      *obs.Counter
	authFailures *obs.Counter
	rejects      *obs.Counter
}

// WithServerObs wires the server's protocol counters into reg under the
// fiat_quicfast_server_* names.
func WithServerObs(reg *obs.Registry) ServerOption {
	return func(s *Server) {
		s.mx = serverMetrics{
			handshakes:   reg.Counter("fiat_quicfast_server_handshakes_total"),
			messages:     reg.Counter("fiat_quicfast_server_messages_total"),
			zeroRTT:      reg.Counter("fiat_quicfast_server_zero_rtt_total"),
			replays:      reg.Counter("fiat_quicfast_server_replays_total"),
			authFailures: reg.Counter("fiat_quicfast_server_auth_failures_total"),
			rejects:      reg.Counter("fiat_quicfast_server_rejects_total"),
		}
	}
}

// ServerStats are the protocol event counters.
type ServerStats struct {
	Handshakes, Messages, ZeroRTT, Replays, AuthFailures int
	// Rejects counts packets refused for unknown session or ticket state
	// (e.g. after a server restart), answered with an explicit reject so
	// the client can fall back to a fresh 1-RTT handshake immediately
	// instead of retransmitting into the void.
	Rejects int
}

type serverSession struct {
	keys    *sessionKeys
	highPkt uint32
}

type ticketState struct {
	resumption []byte
	highPkt    uint32 // strictly increasing packet numbers defeat replay
}

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithServerRand overrides the entropy source (tests).
func WithServerRand(r io.Reader) ServerOption {
	return func(s *Server) { s.rand = r }
}

// NewServer wraps conn. The handler runs on the read loop goroutine; keep it
// fast or dispatch. Start the loop with Serve.
func NewServer(conn net.PacketConn, psk []byte, handler func(Message), opts ...ServerOption) *Server {
	s := &Server{
		conn:     conn,
		psk:      append([]byte(nil), psk...),
		rand:     rand.Reader,
		handler:  handler,
		sessions: make(map[string]*serverSession),
		tickets:  make(map[string]*ticketState),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve reads datagrams until the connection closes. Run it in a goroutine.
func (s *Server) Serve() error {
	buf := make([]byte, 65535)
	for {
		n, addr, err := s.conn.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		s.handlePacket(pkt, addr)
	}
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.conn.Close()
}

func (s *Server) handlePacket(pkt []byte, addr net.Addr) {
	if len(pkt) < 1 {
		return
	}
	switch pkt[0] {
	case ptInitial:
		s.handleInitial(pkt, addr)
	case ptData:
		s.handleData(pkt, addr)
	case ptZeroRTT:
		s.handleZeroRTT(pkt, addr)
	}
}

// handleInitial processes [type][connID][cpub][crandom][mac] and answers
// with [type][connID][spub][srandom][mac][sealed ticket].
func (s *Server) handleInitial(pkt []byte, addr net.Addr) {
	want := 1 + connIDLen + pubKeyLen + randomLen + macLen
	if len(pkt) != want {
		return
	}
	connID := pkt[1 : 1+connIDLen]
	cpubRaw := pkt[1+connIDLen : 1+connIDLen+pubKeyLen]
	crandom := pkt[1+connIDLen+pubKeyLen : 1+connIDLen+pubKeyLen+randomLen]
	mac := pkt[len(pkt)-macLen:]
	if !hmacEqual(pskMAC(s.psk, []byte("init"), connID, cpubRaw, crandom), mac) {
		s.mu.Lock()
		s.Stats.AuthFailures++
		s.mx.authFailures.Inc()
		s.mu.Unlock()
		return
	}
	cpub, err := ecdh.X25519().NewPublicKey(cpubRaw)
	if err != nil {
		return
	}
	spriv, err := newX25519(s.rand)
	if err != nil {
		return
	}
	shared, err := spriv.ECDH(cpub)
	if err != nil {
		return
	}
	srandom := make([]byte, randomLen)
	if _, err := io.ReadFull(s.rand, srandom); err != nil {
		return
	}
	salt := append(append([]byte(nil), crandom...), srandom...)
	keys, err := deriveKeys(shared, salt)
	if err != nil {
		return
	}
	// Mint a resumption ticket and protect it under the server AEAD so
	// only this client learns it.
	ticketID := make([]byte, ticketIDLen)
	resumption := make([]byte, secretLen)
	if _, err := io.ReadFull(s.rand, ticketID); err != nil {
		return
	}
	if _, err := io.ReadFull(s.rand, resumption); err != nil {
		return
	}
	ticketPlain := append(append([]byte(nil), ticketID...), resumption...)

	reply := make([]byte, 0, 256)
	reply = append(reply, ptReply)
	reply = append(reply, connID...)
	spubRaw := spriv.PublicKey().Bytes()
	reply = append(reply, spubRaw...)
	reply = append(reply, srandom...)
	reply = append(reply, pskMAC(s.psk, []byte("reply"), connID, spubRaw, srandom, crandom)...)
	box := keys.serverAEAD.Seal(nil, nonceFor(keys.serverIV, 0), ticketPlain, reply[:1+connIDLen])
	reply = append(reply, box...)

	s.mu.Lock()
	s.sessions[string(connID)] = &serverSession{keys: keys}
	s.tickets[string(ticketID)] = &ticketState{resumption: resumption}
	s.Stats.Handshakes++
	s.mx.handshakes.Inc()
	s.mu.Unlock()

	_, _ = s.conn.WriteTo(reply, addr)
}

// handleData processes a 1-RTT application packet and acks it.
func (s *Server) handleData(pkt []byte, addr net.Addr) {
	hdr := 1 + connIDLen + 4
	if len(pkt) < hdr {
		return
	}
	connID := pkt[1 : 1+connIDLen]
	pktNum := binary.BigEndian.Uint32(pkt[1+connIDLen : hdr])
	s.mu.Lock()
	sess, ok := s.sessions[string(connID)]
	s.mu.Unlock()
	if !ok {
		s.reject(pkt[1:hdr], addr)
		return
	}
	plain, err := sess.keys.clientAEAD.Open(nil, nonceFor(sess.keys.clientIV, pktNum), pkt[hdr:], pkt[:hdr])
	if err != nil {
		s.mu.Lock()
		s.Stats.AuthFailures++
		s.mx.authFailures.Inc()
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	if pktNum <= sess.highPkt {
		s.Stats.Replays++
		s.mx.replays.Inc()
		s.mu.Unlock()
		return
	}
	sess.highPkt = pktNum
	s.Stats.Messages++
	s.mx.messages.Inc()
	s.mu.Unlock()

	ack := make([]byte, 0, 64)
	ack = append(ack, ptAck)
	ack = append(ack, connID...)
	var num [4]byte
	binary.BigEndian.PutUint32(num[:], pktNum)
	ack = append(ack, num[:]...)
	ack = append(ack, sess.keys.serverAEAD.Seal(nil, nonceFor(sess.keys.serverIV, pktNum), []byte("ack"), ack[:1+connIDLen+4])...)
	_, _ = s.conn.WriteTo(ack, addr)

	if s.handler != nil {
		s.handler(Message{Payload: plain, Session: hex.EncodeToString(connID)})
	}
}

// handleZeroRTT processes [type][ticketID][pktnum][box]. Packet numbers
// must strictly increase per ticket: an exact replay reuses a number and is
// dropped.
func (s *Server) handleZeroRTT(pkt []byte, addr net.Addr) {
	hdr := 1 + ticketIDLen + 4
	if len(pkt) < hdr {
		return
	}
	ticketID := pkt[1 : 1+ticketIDLen]
	pktNum := binary.BigEndian.Uint32(pkt[1+ticketIDLen : hdr])
	s.mu.Lock()
	tk, ok := s.tickets[string(ticketID)]
	s.mu.Unlock()
	if !ok {
		s.reject(pkt[1:hdr], addr)
		return
	}
	aead, iv, err := zeroRTTKeys(tk.resumption)
	if err != nil {
		return
	}
	plain, err := aead.Open(nil, nonceFor(iv, pktNum), pkt[hdr:], pkt[:hdr])
	if err != nil {
		s.mu.Lock()
		s.Stats.AuthFailures++
		s.mx.authFailures.Inc()
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	if pktNum <= tk.highPkt {
		s.Stats.Replays++
		s.mx.replays.Inc()
		s.mu.Unlock()
		return
	}
	tk.highPkt = pktNum
	s.Stats.Messages++
	s.Stats.ZeroRTT++
	s.mx.messages.Inc()
	s.mx.zeroRTT.Inc()
	s.mu.Unlock()

	ack := make([]byte, 0, 64)
	ack = append(ack, ptZeroAck)
	ack = append(ack, ticketID...)
	var num [4]byte
	binary.BigEndian.PutUint32(num[:], pktNum)
	ack = append(ack, num[:]...)
	ack = append(ack, aead.Seal(nil, nonceFor(iv, pktNum^0x80000000), []byte("ack"), ack[:hdr])...)
	_, _ = s.conn.WriteTo(ack, addr)

	if s.handler != nil {
		s.handler(Message{Payload: plain, ZeroRTT: true, Session: hex.EncodeToString(ticketID)})
	}
}

// reject answers a packet whose session/ticket state is unknown with an
// explicit [ptReject][echoed header] so the client stops retransmitting and
// re-handshakes. The reject is unauthenticated by construction (the server
// has no keys for this peer); forging one can only downgrade a 0-RTT send
// to a fresh authenticated 1-RTT handshake, never bypass authentication.
func (s *Server) reject(echo []byte, addr net.Addr) {
	s.mu.Lock()
	s.Stats.Rejects++
	s.mx.rejects.Inc()
	s.mu.Unlock()
	rej := make([]byte, 0, 1+len(echo))
	rej = append(rej, ptReject)
	rej = append(rej, echo...)
	_, _ = s.conn.WriteTo(rej, addr)
}

// Replays reports the replay-rejection counter.
func (s *Server) Replays() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Stats.Replays
}

// StatsSnapshot returns a consistent copy of the counters, safe to read
// while Serve runs.
func (s *Server) StatsSnapshot() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Stats
}

func hmacEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
