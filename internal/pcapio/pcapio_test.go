package pcapio

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"fiat/internal/packet"
)

func sampleFrames(t *testing.T, n int) ([]packet.CaptureInfo, [][]byte) {
	t.Helper()
	var b packet.Builder
	src := netip.MustParseAddr("10.0.0.2")
	dst := netip.MustParseAddr("34.5.6.7")
	infos := make([]packet.CaptureInfo, n)
	frames := make([][]byte, n)
	base := time.Date(2022, 6, 1, 12, 0, 0, 123456000, time.UTC)
	for i := 0; i < n; i++ {
		raw := b.TCPPacket(packet.TCPSpec{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: src, DstIP: dst, SrcPort: uint16(1000 + i), DstPort: 443,
			Flags: packet.TCPFlagACK, Payload: bytes.Repeat([]byte{byte(i)}, i+1),
		})
		frames[i] = raw
		infos[i] = packet.CaptureInfo{
			Timestamp:     base.Add(time.Duration(i) * time.Second),
			CaptureLength: len(raw),
			Length:        len(raw),
		}
	}
	return infos, frames
}

func roundTrip(t *testing.T, opts ...WriterOption) ([]packet.CaptureInfo, [][]byte, *Reader) {
	t.Helper()
	infos, frames := sampleFrames(t, 5)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		if err := w.WritePacket(infos[i], frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return infos, frames, r
}

func TestRoundTripMicro(t *testing.T) {
	infos, frames, r := roundTrip(t)
	for i := range frames {
		info, data, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(data, frames[i]) {
			t.Fatalf("record %d: bytes differ", i)
		}
		// Microsecond precision truncates to µs.
		want := infos[i].Timestamp.Truncate(time.Microsecond)
		if !info.Timestamp.Equal(want) {
			t.Fatalf("record %d: ts = %v, want %v", i, info.Timestamp, want)
		}
	}
	if _, _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRoundTripNano(t *testing.T) {
	infos, frames, r := roundTrip(t, WithNanosecondPrecision())
	for i := range frames {
		info, data, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(data, frames[i]) {
			t.Fatalf("record %d: bytes differ", i)
		}
		if !info.Timestamp.Equal(infos[i].Timestamp) {
			t.Fatalf("record %d: ts = %v, want %v", i, info.Timestamp, infos[i].Timestamp)
		}
	}
}

func TestReadAllDecodes(t *testing.T) {
	_, frames, r := roundTrip(t)
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != len(frames) {
		t.Fatalf("ReadAll = %d packets, want %d", len(pkts), len(frames))
	}
	for i, p := range pkts {
		if p.TCP() == nil {
			t.Fatalf("packet %d: no TCP layer", i)
		}
		if p.TCP().SrcPort != uint16(1000+i) {
			t.Fatalf("packet %d: src port %d", i, p.TCP().SrcPort)
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadLinkType(t *testing.T) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicro)
	binary.LittleEndian.PutUint32(hdr[20:24], 101) // raw IP
	if _, err := NewReader(bytes.NewReader(hdr[:])); err != ErrBadLink {
		t.Fatalf("err = %v, want ErrBadLink", err)
	}
}

func TestTruncatedRecordBody(t *testing.T) {
	infos, frames := sampleFrames(t, 1)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(infos[0], frames[0]); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); err != ErrShortPkt {
		t.Fatalf("err = %v, want ErrShortPkt", err)
	}
}

func TestSnaplenEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithSnaplen(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(packet.CaptureInfo{}, make([]byte, 11)); err == nil {
		t.Fatal("expected snaplen error")
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian file with one 4-byte record.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], magicMicro)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:4], 1654084800)
	binary.BigEndian.PutUint32(rec[4:8], 42)
	binary.BigEndian.PutUint32(rec[8:12], 4)
	binary.BigEndian.PutUint32(rec[12:16], 4)
	buf.Write(rec[:])
	buf.Write([]byte{1, 2, 3, 4})
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	info, data, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{1, 2, 3, 4}) {
		t.Fatalf("data = %v", data)
	}
	if info.Timestamp.Unix() != 1654084800 || info.Timestamp.Nanosecond() != 42000 {
		t.Fatalf("ts = %v", info.Timestamp)
	}
}

func TestPropertyRoundTripArbitraryPayloads(t *testing.T) {
	f := func(payloads [][]byte, secs uint32) bool {
		if len(payloads) > 20 {
			payloads = payloads[:20]
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, WithNanosecondPrecision())
		if err != nil {
			return false
		}
		for i, p := range payloads {
			if len(p) > 2000 {
				p = p[:2000]
			}
			info := packet.CaptureInfo{
				Timestamp:     time.Unix(int64(secs), int64(i)).UTC(),
				CaptureLength: len(p),
				Length:        len(p),
			}
			if err := w.WritePacket(info, p); err != nil {
				return false
			}
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i, p := range payloads {
			if len(p) > 2000 {
				p = p[:2000]
			}
			_, data, err := r.ReadPacket()
			if err != nil || !bytes.Equal(data, p) {
				return false
			}
			_ = i
		}
		_, _, err = r.ReadPacket()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
