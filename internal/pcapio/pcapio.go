// Package pcapio reads and writes classic libpcap capture files, so traces
// produced by the simulators interoperate with tcpdump/Wireshark and the
// repository's own tools. Both the microsecond (0xa1b2c3d4) and nanosecond
// (0xa1b23c4d) magics are supported, in either byte order.
package pcapio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"fiat/internal/packet"
)

// File magics.
const (
	magicMicro = 0xa1b2c3d4
	magicNano  = 0xa1b23c4d
)

// LinkTypeEthernet is the only link type this repository produces.
const LinkTypeEthernet = 1

// Errors returned by the reader.
var (
	ErrBadMagic   = errors.New("pcapio: unrecognized magic number")
	ErrBadLink    = errors.New("pcapio: unsupported link type")
	ErrShortPkt   = errors.New("pcapio: truncated packet record")
	errSnapExceed = errors.New("pcapio: capture length exceeds snaplen")
)

// Writer emits a pcap stream. Create with NewWriter, then call WritePacket
// for each frame.
type Writer struct {
	w       io.Writer
	snaplen uint32
	nano    bool
	wrote   bool
}

// WriterOption customizes a Writer.
type WriterOption func(*Writer)

// WithNanosecondPrecision switches the writer to the nanosecond magic.
func WithNanosecondPrecision() WriterOption {
	return func(w *Writer) { w.nano = true }
}

// WithSnaplen sets the advertised snap length (default 262144).
func WithSnaplen(n uint32) WriterOption {
	return func(w *Writer) { w.snaplen = n }
}

// NewWriter writes the global header immediately.
func NewWriter(w io.Writer, opts ...WriterOption) (*Writer, error) {
	pw := &Writer{w: w, snaplen: 262144}
	for _, o := range opts {
		o(pw)
	}
	var hdr [24]byte
	magic := uint32(magicMicro)
	if pw.nano {
		magic = magicNano
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version 2.4
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pw.snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: writing global header: %w", err)
	}
	return pw, nil
}

// WritePacket appends one packet record.
func (w *Writer) WritePacket(info packet.CaptureInfo, data []byte) error {
	if uint32(len(data)) > w.snaplen {
		return errSnapExceed
	}
	var hdr [16]byte
	ts := info.Timestamp
	sec := uint32(ts.Unix())
	var frac uint32
	if w.nano {
		frac = uint32(ts.Nanosecond())
	} else {
		frac = uint32(ts.Nanosecond() / 1000)
	}
	binary.LittleEndian.PutUint32(hdr[0:4], sec)
	binary.LittleEndian.PutUint32(hdr[4:8], frac)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	length := info.Length
	if length < len(data) {
		length = len(data)
	}
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(length))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcapio: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcapio: writing record body: %w", err)
	}
	w.wrote = true
	return nil
}

// Reader consumes a pcap stream.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nano     bool
	snaplen  uint32
	linkType uint32
}

// NewReader parses the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: reading global header: %w", err)
	}
	pr := &Reader{r: r}
	le := binary.LittleEndian.Uint32(hdr[0:4])
	be := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case le == magicMicro:
		pr.order = binary.LittleEndian
	case le == magicNano:
		pr.order, pr.nano = binary.LittleEndian, true
	case be == magicMicro:
		pr.order = binary.BigEndian
	case be == magicNano:
		pr.order, pr.nano = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	pr.snaplen = pr.order.Uint32(hdr[16:20])
	pr.linkType = pr.order.Uint32(hdr[20:24])
	if pr.linkType != LinkTypeEthernet {
		return nil, ErrBadLink
	}
	return pr, nil
}

// Snaplen returns the stream's advertised snap length.
func (r *Reader) Snaplen() uint32 { return r.snaplen }

// ReadPacket returns the next record. It returns io.EOF cleanly at the end
// of the stream.
func (r *Reader) ReadPacket() (packet.CaptureInfo, []byte, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return packet.CaptureInfo{}, nil, io.EOF
		}
		return packet.CaptureInfo{}, nil, fmt.Errorf("pcapio: reading record header: %w", err)
	}
	sec := r.order.Uint32(hdr[0:4])
	frac := r.order.Uint32(hdr[4:8])
	capLen := r.order.Uint32(hdr[8:12])
	origLen := r.order.Uint32(hdr[12:16])
	if capLen > r.snaplen {
		return packet.CaptureInfo{}, nil, ErrShortPkt
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return packet.CaptureInfo{}, nil, ErrShortPkt
	}
	nanos := int64(frac)
	if !r.nano {
		nanos *= 1000
	}
	info := packet.CaptureInfo{
		Timestamp:     time.Unix(int64(sec), nanos).UTC(),
		CaptureLength: int(capLen),
		Length:        int(origLen),
	}
	return info, data, nil
}

// ReadAll decodes every remaining record into packets.
func (r *Reader) ReadAll() ([]*packet.Packet, error) {
	var pkts []*packet.Packet
	for {
		info, data, err := r.ReadPacket()
		if err == io.EOF {
			return pkts, nil
		}
		if err != nil {
			return pkts, err
		}
		pkts = append(pkts, packet.Decode(data, info))
	}
}
