package devices

import (
	"net/netip"

	"fiat/internal/flows"
	"fiat/internal/packet"
)

// Framer converts abstract trace records into wire-correct Ethernet frames
// for pcap export and the frame-level examples. The device sits on the LAN
// behind a gateway; remote endpoints keep the record's addressing.
type Framer struct {
	DeviceIP   netip.Addr
	DeviceMAC  packet.MAC
	GatewayMAC packet.MAC

	builder packet.Builder
	seq     map[flows.Key]uint32
}

// NewFramer builds a framer for one device.
func NewFramer(deviceIP netip.Addr, deviceMAC, gatewayMAC packet.MAC) *Framer {
	return &Framer{
		DeviceIP: deviceIP, DeviceMAC: deviceMAC, GatewayMAC: gatewayMAC,
		seq: make(map[flows.Key]uint32),
	}
}

// Frame serializes one record. TCP payloads carry a TLS record when the
// trace says so; sizes are honored by padding the payload so the on-wire
// length matches rec.Size (minimum framing applies for tiny sizes).
func (f *Framer) Frame(rec flows.Record) []byte {
	srcIP, dstIP := f.DeviceIP, rec.RemoteIP
	srcMAC, dstMAC := f.DeviceMAC, f.GatewayMAC
	srcPort, dstPort := rec.LocalPort, rec.RemotePort
	if rec.Dir == flows.DirInbound {
		srcIP, dstIP = dstIP, srcIP
		srcMAC, dstMAC = f.GatewayMAC, f.DeviceMAC
		srcPort, dstPort = dstPort, srcPort
	}
	if rec.Proto == "udp" {
		payloadLen := rec.Size - 14 - 20 - 8
		if payloadLen < 0 {
			payloadLen = 0
		}
		return f.builder.UDPPacket(packet.UDPSpec{
			SrcMAC: srcMAC, DstMAC: dstMAC, SrcIP: srcIP, DstIP: dstIP,
			SrcPort: srcPort, DstPort: dstPort,
			Payload: make([]byte, payloadLen),
		})
	}
	payloadLen := rec.Size - 14 - 20 - 20
	if payloadLen < 0 {
		payloadLen = 0
	}
	var payload []byte
	if rec.TLSVersion != 0 && payloadLen >= 5 {
		payload = packet.TLSAppData(rec.TLSVersion, payloadLen-5)
	} else {
		payload = make([]byte, payloadLen)
	}
	key := flows.KeyOf(flows.ModeClassic, rec)
	f.seq[key] += uint32(len(payload))
	flags := rec.TCPFlags
	if flags == 0 {
		flags = packet.TCPFlagACK
	}
	return f.builder.TCPPacket(packet.TCPSpec{
		SrcMAC: srcMAC, DstMAC: dstMAC, SrcIP: srcIP, DstIP: dstIP,
		SrcPort: srcPort, DstPort: dstPort,
		Seq: f.seq[key], Flags: flags, Payload: payload,
	})
}

// RecordFromFrame inverts Frame for proxy-side consumption: decode a frame
// and normalize it to the device's viewpoint. resolve maps an address to
// its domain ("" allowed). The boolean is false for frames not involving
// the device.
func RecordFromFrame(p *packet.Packet, deviceIP netip.Addr, resolve func(netip.Addr) string) (flows.Record, bool) {
	ip := p.IPv4()
	if ip == nil {
		return flows.Record{}, false
	}
	var rec flows.Record
	rec.Time = p.Info.Timestamp
	rec.Size = p.Info.Length
	if rec.Size == 0 {
		rec.Size = len(p.Data)
	}
	rec.Proto = p.TransportProto()
	if rec.Proto == "" {
		return flows.Record{}, false
	}
	var localPort, remotePort uint16
	switch {
	case ip.SrcIP == deviceIP:
		rec.Dir = flows.DirOutbound
		rec.RemoteIP = ip.DstIP
	case ip.DstIP == deviceIP:
		rec.Dir = flows.DirInbound
		rec.RemoteIP = ip.SrcIP
	default:
		return flows.Record{}, false
	}
	if t := p.TCP(); t != nil {
		rec.TCPFlags = t.Flags
		if rec.Dir == flows.DirOutbound {
			localPort, remotePort = t.SrcPort, t.DstPort
		} else {
			localPort, remotePort = t.DstPort, t.SrcPort
		}
	} else if u := p.UDP(); u != nil {
		if rec.Dir == flows.DirOutbound {
			localPort, remotePort = u.SrcPort, u.DstPort
		} else {
			localPort, remotePort = u.DstPort, u.SrcPort
		}
	}
	rec.LocalPort, rec.RemotePort = localPort, remotePort
	if tls := p.TLS(); tls != nil {
		rec.TLSVersion = tls.Version
	}
	if resolve != nil {
		rec.RemoteDomain = resolve(rec.RemoteIP)
	}
	return rec, true
}
