package devices

import (
	"testing"
	"time"

	"fiat/internal/dnssim"
	"fiat/internal/events"
	"fiat/internal/flows"
	"fiat/internal/netsim"
	"fiat/internal/simclock"
)

var start = simclock.Epoch

func gen(t *testing.T, name string, days int, manualPerDay float64) []flows.Record {
	t.Helper()
	p := ByName(name)
	if p == nil {
		t.Fatalf("no profile %q", name)
	}
	rng := simclock.NewRNG(42).Fork(name)
	return p.Generate(rng, TraceOptions{
		Start: start, Duration: time.Duration(days) * 24 * time.Hour,
		Loc: netsim.LocCloudUS, ManualPerDay: manualPerDay, Routines: true,
	})
}

func analyze(recs []flows.Record, mode flows.KeyMode) *flows.Analyzer {
	a := flows.NewAnalyzer(mode)
	a.ObserveAll(recs)
	return a
}

func TestCatalogShape(t *testing.T) {
	all := StandardTestbed()
	if len(all) != 10 {
		t.Fatalf("testbed has %d devices, want 10", len(all))
	}
	names := map[string]bool{}
	for _, p := range all {
		if names[p.Name] {
			t.Fatalf("duplicate device %q", p.Name)
		}
		names[p.Name] = true
		if p.CompletionN < 1 || p.CompletionN > 41 {
			t.Fatalf("%s: CompletionN = %d outside [1,41]", p.Name, p.CompletionN)
		}
		if len(p.Control) == 0 {
			t.Fatalf("%s: no control flows", p.Name)
		}
		if p.DomainAt(netsim.LocCloudUS) == "" {
			t.Fatalf("%s: no US domain", p.Name)
		}
	}
	simple := 0
	for _, p := range all {
		if p.SimpleRule {
			simple++
		}
	}
	if simple != 3 { // SP10, WP3, Nest-E
		t.Fatalf("simple-rule devices = %d, want 3", simple)
	}
	if len(ComplexDevices()) != 7 {
		t.Fatalf("complex devices = %d, want 7", len(ComplexDevices()))
	}
}

func TestCompletionNBounds(t *testing.T) {
	if !ByName("SP10").CommandCompletes(1) {
		t.Fatal("SP10 must complete with 1 packet")
	}
	if ByName("WyzeCam").CommandCompletes(40) {
		t.Fatal("WyzeCam must not complete with 40 packets")
	}
	if !ByName("WyzeCam").CommandCompletes(41) {
		t.Fatal("WyzeCam must complete with 41 packets")
	}
}

func TestControlTrafficHighlyPredictable(t *testing.T) {
	for _, name := range []string{"EchoDot4", "HomeMini", "WyzeCam", "SP10", "EchoDot3"} {
		recs := gen(t, name, 3, 0)
		a := analyze(recs, flows.ModePortLess)
		by := a.FractionByCategory()
		if by[flows.CategoryControl] < 0.95 {
			t.Errorf("%s: control predictability = %.3f, want ~0.98", name, by[flows.CategoryControl])
		}
	}
}

func TestNestIsTheControlOutlier(t *testing.T) {
	nest := analyze(gen(t, "Nest-E", 3, 0), flows.ModePortLess).FractionByCategory()[flows.CategoryControl]
	mini := analyze(gen(t, "HomeMini", 3, 0), flows.ModePortLess).FractionByCategory()[flows.CategoryControl]
	if nest >= mini {
		t.Fatalf("Nest-E control predictability %.3f >= HomeMini %.3f; Nest must be the outlier", nest, mini)
	}
	if nest < 0.82 || nest > 0.96 {
		t.Fatalf("Nest-E control predictability = %.3f, want ~0.91", nest)
	}
}

func TestAutomatedPredictabilityMidRange(t *testing.T) {
	for _, name := range []string{"EchoDot4", "HomeMini", "Home"} {
		by := analyze(gen(t, name, 5, 0), flows.ModePortLess).FractionByCategory()
		if by[flows.CategoryAutomated] < 0.75 || by[flows.CategoryAutomated] > 0.97 {
			t.Errorf("%s: automated predictability = %.3f, want ~0.9", name, by[flows.CategoryAutomated])
		}
	}
}

func TestPlugAutomatedPredictabilityZeroish(t *testing.T) {
	for _, name := range []string{"SP10", "WP3"} {
		by := analyze(gen(t, name, 5, 0), flows.ModePortLess).FractionByCategory()
		if by[flows.CategoryAutomated] > 0.15 {
			t.Errorf("%s: automated predictability = %.3f, want ~0 (two-packet events)", name, by[flows.CategoryAutomated])
		}
	}
}

func TestManualPredictabilityLowExceptCameras(t *testing.T) {
	for _, name := range []string{"EchoDot4", "HomeMini", "Home", "E4"} {
		by := analyze(gen(t, name, 5, 8), flows.ModePortLess).FractionByCategory()
		if by[flows.CategoryManual] > 0.45 {
			t.Errorf("%s: manual predictability = %.3f, want low", name, by[flows.CategoryManual])
		}
	}
	for _, name := range []string{"WyzeCam", "Blink"} {
		by := analyze(gen(t, name, 5, 8), flows.ModePortLess).FractionByCategory()
		if by[flows.CategoryManual] < 0.5 || by[flows.CategoryManual] > 0.85 {
			t.Errorf("%s: manual predictability = %.3f, want 0.6-0.65 (streaming)", name, by[flows.CategoryManual])
		}
	}
}

func TestPortLessBeatsClassic(t *testing.T) {
	for _, name := range []string{"EchoDot4", "WyzeCam"} {
		recs := gen(t, name, 2, 0)
		classic := analyze(recs, flows.ModeClassic).Fraction()
		portless := analyze(recs, flows.ModePortLess).Fraction()
		if portless <= classic {
			t.Errorf("%s: PortLess %.3f <= Classic %.3f", name, portless, classic)
		}
		if portless-classic < 0.05 {
			t.Errorf("%s: PortLess gap only %.3f; fresh-port flows should fragment Classic", name, portless-classic)
		}
	}
}

func TestMaxPredictableIntervalWithinTenMinutes(t *testing.T) {
	// Fig 1(c): all recurring intervals of idle (control) traffic fall
	// within 10 minutes, justifying the 20-minute bootstrap. Routines are
	// off, matching the YourThings idle-capture context of the figure.
	for _, p := range StandardTestbed() {
		rng := simclock.NewRNG(42).Fork(p.Name)
		recs := p.Generate(rng, TraceOptions{Start: start, Duration: 2 * 24 * time.Hour, Loc: netsim.LocCloudUS})
		st := analyze(recs, flows.ModePortLess).MaxIntervals()
		for _, d := range st.PerFlow {
			if d > 10*time.Minute {
				t.Errorf("%s: recurring interval %v exceeds 10 minutes", p.Name, d)
			}
		}
	}
}

func TestManualEventsDistinguishable(t *testing.T) {
	// The unpredictable events of a low-confusion device must separate by
	// shape: manual events mostly have inbound TCP/TLS heads; control
	// events outbound UDP heads.
	recs := gen(t, "HomeMini", 7, 10)
	a := analyze(recs, flows.ModePortLess)
	evs := events.FromAnalyzer(a, 0)
	manual, manualInTCP, other, otherOutUDP := 0, 0, 0, 0
	for _, e := range evs {
		head := e.Packets[0]
		switch e.Category {
		case flows.CategoryManual:
			manual++
			if head.Dir == flows.DirInbound && head.Proto == "tcp" {
				manualInTCP++
			}
		default:
			other++
			if head.Dir == flows.DirOutbound && head.Proto == "udp" {
				otherOutUDP++
			}
		}
	}
	if manual < 30 {
		t.Fatalf("only %d manual events generated", manual)
	}
	if float64(manualInTCP)/float64(manual) < 0.85 {
		t.Fatalf("manual events with inbound TCP head: %d/%d", manualInTCP, manual)
	}
	if float64(otherOutUDP)/float64(other) < 0.5 {
		t.Fatalf("non-manual events with outbound UDP head: %d/%d", otherOutUDP, other)
	}
}

func TestEventCountsRealistic(t *testing.T) {
	// ~15 days with ~20 interactions per device (§3.1): unpredictable
	// non-manual events must land in the 60-180 range per device that
	// Table 6 reports for the FIAT experiment window.
	recs := gen(t, "EchoDot4", 7, 3)
	a := analyze(recs, flows.ModePortLess)
	evs := events.FromAnalyzer(a, 0)
	nonManual := 0
	for _, e := range evs {
		if e.Category != flows.CategoryManual {
			nonManual++
		}
	}
	if nonManual < 40 {
		t.Fatalf("non-manual unpredictable events = %d over a week, too few", nonManual)
	}
}

func TestLocationChangesDomains(t *testing.T) {
	p := ByName("HomeMini")
	us := p.DomainAt(netsim.LocCloudUS)
	jp := p.DomainAt(netsim.LocCloudJP)
	de := p.DomainAt(netsim.LocCloudDE)
	if us == jp || us == de || jp == de {
		t.Fatalf("domains not location-specific: %s %s %s", us, jp, de)
	}
	if AddrFor(us) == AddrFor(jp) {
		t.Fatal("different domains share an address")
	}
	rngUS := simclock.NewRNG(1)
	rngJP := simclock.NewRNG(1)
	usRecs := p.Generate(rngUS, TraceOptions{Start: start, Duration: time.Hour, Loc: netsim.LocCloudUS})
	jpRecs := p.Generate(rngJP, TraceOptions{Start: start, Duration: time.Hour, Loc: netsim.LocCloudJP})
	if usRecs[0].RemoteDomain == jpRecs[0].RemoteDomain {
		t.Fatal("trace domains identical across locations")
	}
}

func TestRegisterDomainsResolvable(t *testing.T) {
	zone := dnssim.NewZone()
	for _, p := range StandardTestbed() {
		p.RegisterDomains(zone)
	}
	for _, p := range StandardTestbed() {
		recs := gen(t, p.Name, 1, 2)
		for _, r := range recs[:min(200, len(recs))] {
			name, err := zone.ReverseLookup(r.RemoteIP)
			if err != nil {
				t.Fatalf("%s: %s unresolvable: %v", p.Name, r.RemoteIP, err)
			}
			if name != r.RemoteDomain {
				t.Fatalf("%s: reverse(%s) = %s, want %s", p.Name, r.RemoteIP, name, r.RemoteDomain)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := ByName("EchoDot4")
	a := p.Generate(simclock.NewRNG(5), TraceOptions{Start: start, Duration: 6 * time.Hour, ManualPerDay: 4, Routines: true})
	b := p.Generate(simclock.NewRNG(5), TraceOptions{Start: start, Duration: 6 * time.Hour, ManualPerDay: 4, Routines: true})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestTraceSorted(t *testing.T) {
	recs := gen(t, "WyzeCam", 1, 5)
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatal("trace not sorted by time")
		}
	}
}

func TestManualTimesPinned(t *testing.T) {
	p := ByName("SP10")
	times := []time.Time{start.Add(time.Hour), start.Add(2 * time.Hour)}
	recs := p.Generate(simclock.NewRNG(3), TraceOptions{
		Start: start, Duration: 3 * time.Hour, ManualTimes: times,
	})
	manualPkts := 0
	for _, r := range recs {
		if r.Category == flows.CategoryManual {
			manualPkts++
		}
	}
	if manualPkts != 4 { // 2 events x 2 packets
		t.Fatalf("manual packets = %d, want 4", manualPkts)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
