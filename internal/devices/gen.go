package devices

import (
	"sort"
	"time"

	"fiat/internal/flows"
	"fiat/internal/netsim"
	"fiat/internal/simclock"
)

// TraceOptions parameterizes trace generation for one device.
type TraceOptions struct {
	// Start and Duration bound the trace.
	Start    time.Time
	Duration time.Duration
	// Loc selects the cloud location (US, or the DE/JP VPN exits).
	Loc netsim.Location
	// ManualPerDay is the human-interaction rate; ManualTimes, when
	// non-empty, pins the interactions instead (the IL ground-truth log).
	ManualPerDay float64
	ManualTimes  []time.Time
	// Routines enables the Table 1 automations.
	Routines bool
}

// Generate produces the device's labeled packet trace, sorted by time.
// Packets carry ground-truth categories; the analyzers never see the labels
// except for evaluation.
func (p *Profile) Generate(rng *simclock.RNG, opt TraceOptions) []flows.Record {
	if opt.Loc == "" {
		opt.Loc = netsim.LocCloudUS
	}
	end := opt.Start.Add(opt.Duration)
	var recs []flows.Record

	// 1. Periodic control flows.
	base := p.DomainAt(opt.Loc)
	for fi, cf := range p.Control {
		domain := cf.DomainSuffix + base
		phase := time.Duration(rng.Float64() * float64(cf.Period))
		stablePort := uint16(32768 + (fnvPort(p.Name+domain) % 28000))
		// Timer drift is cumulative: each interval is Period plus a small
		// error, so the inter-arrival times stay inside the matching
		// quantum (packet-level predictable) while the phase random-walks
		// across any fixed aggregation grid — the behaviour real device
		// timers show.
		for t := opt.Start.Add(phase); t.Before(end); t = t.Add(cf.Period + time.Duration(rng.Normal(0, 120e6))) {
			lp := stablePort
			if cf.FreshPort {
				lp = uint16(32768 + rng.Intn(28000))
			}
			rp := uint16(443)
			if cf.Proto == "udp" {
				rp = 123
			}
			size := cf.Size
			if cf.SizeDither > 0 && rng.Bernoulli(cf.SizeDither) {
				size += rng.IntBetween(1, 9)
			}
			recs = append(recs, flows.Record{
				Time: t, Size: size, Proto: cf.Proto, Dir: cf.Dir,
				RemoteIP: AddrFor(domain), RemoteDomain: domain,
				LocalPort: lp, RemotePort: rp,
				TCPFlags: tcpFlagsFor(cf.Proto), TLSVersion: cf.TLS,
				Category: flows.CategoryControl,
			})
			_ = fi
		}
	}

	// 2. Unpredictable control events (sensor wakeups, re-syncs).
	for _, t := range poissonTimes(rng, opt.Start, end, p.UnpredControlPerDay) {
		shape := p.CtrlShape
		if rng.Bernoulli(p.OtherConfusion) {
			shape = p.ManualShape
		}
		recs = append(recs, p.eventPackets(rng, t, shape, base, flows.CategoryControl)...)
	}

	// 3. Automated (routine) events.
	if opt.Routines {
		for _, t := range routineTimes(rng, opt.Start, end, p.RoutinesPerDay) {
			shape := p.AutoShape
			if rng.Bernoulli(p.OtherConfusion) {
				shape = p.ManualShape
			}
			recs = append(recs, p.eventPackets(rng, t, shape, base, flows.CategoryAutomated)...)
			recs = append(recs, p.routineBody(rng, t, base)...)
		}
	}

	// 4. Manual events.
	manualTimes := opt.ManualTimes
	if len(manualTimes) == 0 && opt.ManualPerDay > 0 {
		manualTimes = poissonTimes(rng, opt.Start, end, opt.ManualPerDay)
	}
	for _, t := range manualTimes {
		if t.Before(opt.Start) || !t.Before(end) {
			continue
		}
		shape := p.ManualShape
		if rng.Bernoulli(p.ManualConfusion) {
			if rng.Bernoulli(0.5) {
				shape = p.AutoShape
			} else {
				shape = p.CtrlShape
			}
		}
		recs = append(recs, p.eventPackets(rng, t, shape, base, flows.CategoryManual)...)
		if p.StreamOnManual {
			recs = append(recs, p.streamPackets(rng, t.Add(2*time.Second), base)...)
		}
	}

	sort.Slice(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	return recs
}

// eventPackets materializes one unpredictable event from a shape. Real
// captures are noisy — handshakes are missed so the TLS version goes
// unobserved, vendors rotate ports, payload sizes have heavy tails — so a
// fraction of each event's attributes is corrupted independently of its
// class. This keeps single events ambiguous the way the paper's data is
// (kNN does poorly there; evidence-averaging models cope).
func (p *Profile) eventPackets(rng *simclock.RNG, at time.Time, shape EventShape, base string, cat flows.Category) []flows.Record {
	n := rng.IntBetween(shape.PacketsMin, shape.PacketsMax)
	domain := shape.DomainSuffix + base
	lp := uint16(32768 + rng.Intn(28000)) // fresh connection per event
	rp := shape.RemotePort
	if rp == 0 {
		rp = 443
		if shape.Proto == "udp" {
			rp = uint16(8800 + rng.Intn(100))
		}
	}
	tlsMissed := rng.Bernoulli(0.06) // record boundary not captured
	if rng.Bernoulli(0.08) {
		ports := []uint16{443, 8080, 8883}
		rp = ports[rng.Pick(len(ports))]
	}
	recs := make([]flows.Record, 0, n)
	t := at
	dir := shape.FirstDir
	for i := 0; i < n; i++ {
		size := shape.SizeMin
		if shape.SizeMax > shape.SizeMin {
			size = rng.IntBetween(shape.SizeMin, shape.SizeMax)
			if rng.Bernoulli(0.04) {
				size = rng.IntBetween(60, 1500) // heavy-tailed outlier
			}
		}
		if i > 0 && shape.SizeMin == shape.SizeMax {
			// Fixed-size notification protocols answer with a short,
			// distinct ack so intra-event packets never share a bucket.
			size = shape.SizeMin/2 + 17
		}
		tls := shape.TLS
		if dir != shape.FirstDir || tlsMissed {
			tls = 0 // bare acks carry no TLS record
		}
		recs = append(recs, flows.Record{
			Time: t, Size: size, Proto: shape.Proto, Dir: dir,
			RemoteIP: AddrFor(domain), RemoteDomain: domain,
			LocalPort: lp, RemotePort: rp,
			TCPFlags: shape.TCPFlags, TLSVersion: tls,
			Category: cat,
		})
		gap := time.Duration(rng.Exponential(float64(shape.Spacing)))
		if gap > 4*time.Second {
			gap = 4 * time.Second // stay inside the 5 s event window
		}
		t = t.Add(gap)
		if rng.Bernoulli(0.3) {
			dir ^= 1
		}
	}
	return recs
}

// routineBody emits the repetitive part of an automation: within the
// routine the traffic is software-driven and periodic (§3.2 explains the
// ~90% automated predictability). Plugs have no body — their routines are
// the two-packet events themselves, hence predictability 0.
func (p *Profile) routineBody(rng *simclock.RNG, at time.Time, base string) []flows.Record {
	if p.SimpleRule && p.CompletionN <= 1 {
		return nil
	}
	domain := "sched." + base
	n := 18 + rng.Intn(14)
	size := 64 * (3 + rng.Intn(3)) // per-routine-run constant
	lp := uint16(32768 + rng.Intn(28000))
	recs := make([]flows.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, flows.Record{
			Time: at.Add(6*time.Second + time.Duration(i)*2*time.Second),
			Size: size, Proto: "tcp", Dir: flows.DirOutbound,
			RemoteIP: AddrFor(domain), RemoteDomain: domain,
			LocalPort: lp, RemotePort: 443,
			TCPFlags: 0x18, TLSVersion: p.AutoShape.TLS,
			Category: flows.CategoryAutomated,
		})
	}
	return recs
}

// streamPackets emits the constant-rate media stream of a camera's manual
// session — predictable by the inter-arrival heuristic, which is why the
// cameras' manual traffic sits at 60-65% in Fig 2.
func (p *Profile) streamPackets(rng *simclock.RNG, at time.Time, base string) []flows.Record {
	domain := p.ManualShape.DomainSuffix + base
	lp := uint16(32768 + rng.Intn(28000))
	recs := make([]flows.Record, 0, p.StreamPackets)
	for i := 0; i < p.StreamPackets; i++ {
		recs = append(recs, flows.Record{
			Time: at.Add(time.Duration(i) * p.StreamRate),
			Size: p.StreamSize, Proto: "udp", Dir: flows.DirOutbound,
			RemoteIP: AddrFor(domain), RemoteDomain: domain,
			LocalPort: lp, RemotePort: 10001,
			Category: flows.CategoryManual,
		})
	}
	return recs
}

// ScriptedOps synthesizes n canonical manual-command events — the ADB-style
// scripted operations of the Table 6 evaluation. Scripted commands are the
// simple, well-covered interactions (turn on/off, play), so they follow the
// device's manual shape without the "complex interaction" confusion real
// free-form usage shows.
func (p *Profile) ScriptedOps(rng *simclock.RNG, n int, loc netsim.Location, start time.Time) []flows.Record {
	if loc == "" {
		loc = netsim.LocCloudUS
	}
	base := p.DomainAt(loc)
	var recs []flows.Record
	at := start
	for i := 0; i < n; i++ {
		recs = append(recs, p.eventPackets(rng, at, p.ManualShape, base, flows.CategoryManual)...)
		at = at.Add(time.Duration(30+rng.Intn(90)) * time.Second)
	}
	return recs
}

// poissonTimes samples event instants at ratePerDay over [start, end).
func poissonTimes(rng *simclock.RNG, start, end time.Time, ratePerDay float64) []time.Time {
	if ratePerDay <= 0 {
		return nil
	}
	mean := float64(24*time.Hour) / ratePerDay
	var out []time.Time
	t := start.Add(time.Duration(rng.Exponential(mean)))
	for t.Before(end) {
		out = append(out, t)
		t = t.Add(time.Duration(rng.Exponential(mean)))
	}
	return out
}

// routineTimes schedules automations at fixed times of day with small
// execution jitter — routines fire when the clock says so, not Poisson.
func routineTimes(rng *simclock.RNG, start, end time.Time, perDay float64) []time.Time {
	if perDay <= 0 {
		return nil
	}
	n := int(perDay)
	if n < 1 {
		n = 1
	}
	// Fixed daily schedule drawn once.
	offsets := make([]time.Duration, n)
	for i := range offsets {
		offsets[i] = time.Duration(rng.Float64() * float64(24*time.Hour))
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	var out []time.Time
	day := start.Truncate(24 * time.Hour)
	for ; day.Before(end); day = day.Add(24 * time.Hour) {
		for _, off := range offsets {
			t := day.Add(off + time.Duration(rng.Normal(0, 20e9))) // +/- tens of seconds
			if !t.Before(start) && t.Before(end) {
				out = append(out, t)
			}
		}
	}
	return out
}

func tcpFlagsFor(proto string) uint8 {
	if proto == "tcp" {
		return 0x18 // PSH|ACK
	}
	return 0
}

func fnvPort(s string) uint16 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return uint16(h)
}
