package devices

import (
	"net/netip"
	"testing"
	"time"

	"fiat/internal/flows"
	"fiat/internal/packet"
	"fiat/internal/simclock"
)

var (
	devIP  = netip.MustParseAddr("192.168.1.50")
	devMAC = packet.MAC{2, 0, 0, 0, 0, 0x50}
	gwMAC  = packet.MAC{2, 0, 0, 0, 0, 0x01}
)

func TestFrameRoundTrip(t *testing.T) {
	fr := NewFramer(devIP, devMAC, gwMAC)
	p := ByName("HomeMini")
	recs := p.Generate(simclock.NewRNG(1), TraceOptions{
		Start: simclock.Epoch, Duration: time.Hour, ManualPerDay: 24, Routines: true,
	})
	for i, rec := range recs[:min(300, len(recs))] {
		frame := fr.Frame(rec)
		decoded := packet.Decode(frame, packet.CaptureInfo{
			Timestamp: rec.Time, Length: len(frame), CaptureLength: len(frame),
		})
		if decoded.ErrorLayer() != nil {
			t.Fatalf("record %d: decode error %v", i, decoded.ErrorLayer())
		}
		got, ok := RecordFromFrame(decoded, devIP, func(a netip.Addr) string { return rec.RemoteDomain })
		if !ok {
			t.Fatalf("record %d: RecordFromFrame rejected", i)
		}
		if got.Dir != rec.Dir || got.Proto != rec.Proto {
			t.Fatalf("record %d: dir/proto mismatch: %+v vs %+v", i, got, rec)
		}
		if got.RemoteIP != rec.RemoteIP {
			t.Fatalf("record %d: remote IP %v vs %v", i, got.RemoteIP, rec.RemoteIP)
		}
		if got.LocalPort != rec.LocalPort || got.RemotePort != rec.RemotePort {
			t.Fatalf("record %d: ports %d/%d vs %d/%d", i, got.LocalPort, got.RemotePort, rec.LocalPort, rec.RemotePort)
		}
		// TLS survives when the trace had it and the size allowed a record.
		if rec.TLSVersion != 0 && rec.Size >= 14+20+20+5 && got.TLSVersion != rec.TLSVersion {
			t.Fatalf("record %d: TLS %x vs %x", i, got.TLSVersion, rec.TLSVersion)
		}
	}
}

func TestFrameSizeHonored(t *testing.T) {
	fr := NewFramer(devIP, devMAC, gwMAC)
	rec := flows.Record{
		Time: simclock.Epoch, Size: 235, Proto: "tcp", Dir: flows.DirInbound,
		RemoteIP: netip.MustParseAddr("52.0.0.9"), LocalPort: 9999, RemotePort: 443,
		TLSVersion: packet.VersionTLS12,
	}
	frame := fr.Frame(rec)
	if len(frame) != 235 {
		t.Fatalf("frame length = %d, want 235", len(frame))
	}
}

func TestRecordFromFrameIgnoresThirdParties(t *testing.T) {
	var b packet.Builder
	frame := b.TCPPacket(packet.TCPSpec{
		SrcMAC: gwMAC, DstMAC: devMAC,
		SrcIP: netip.MustParseAddr("10.9.9.9"), DstIP: netip.MustParseAddr("10.8.8.8"),
		SrcPort: 1, DstPort: 2,
	})
	p := packet.Decode(frame, packet.CaptureInfo{})
	if _, ok := RecordFromFrame(p, devIP, nil); ok {
		t.Fatal("frame not involving the device accepted")
	}
}
