package devices

import (
	"time"

	"fiat/internal/flows"
	"fiat/internal/packet"
)

// Standard shapes reused across profiles. Manual commands arrive from the
// cloud (inbound first packet, TLS application data over TCP); unpredictable
// control events originate at the device (outbound, often UDP telemetry or
// handshake records) — the separation Table 4 attributes to proto,
// direction, and TLS version.
func manualShape(suffix string, lo, hi int) EventShape {
	return EventShape{
		FirstDir: flows.DirInbound, Proto: "tcp", TLS: packet.VersionTLS12,
		TCPFlags: packet.TCPFlagPSH | packet.TCPFlagACK,
		SizeMin:  lo, SizeMax: hi, PacketsMin: 4, PacketsMax: 12,
		Spacing: 350 * time.Millisecond, DomainSuffix: "gw.",
	}
}

// cameraManualShape models a camera viewing session: a long interactive
// exchange (unpredictable) that precedes and accompanies the media stream.
func cameraManualShape(suffix string, lo, hi int) EventShape {
	sh := manualShape(suffix, lo, hi)
	sh.DomainSuffix = "gw."
	sh.PacketsMin, sh.PacketsMax = 25, 60
	return sh
}

// autoShape models routine execution: the device acts on its stored
// schedule and initiates the status sync itself, so automated events are
// outbound-first — unlike cloud-notified manual commands.
func autoShape(lo, hi int) EventShape {
	return EventShape{
		FirstDir: flows.DirOutbound, Proto: "tcp", TLS: packet.VersionTLS13,
		TCPFlags: packet.TCPFlagACK,
		SizeMin:  lo, SizeMax: hi, PacketsMin: 2, PacketsMax: 6,
		Spacing: 500 * time.Millisecond, DomainSuffix: "gw.", RemotePort: 8883,
	}
}

func ctrlShape(lo, hi int) EventShape {
	return EventShape{
		FirstDir: flows.DirOutbound, Proto: "udp", TLS: 0,
		SizeMin: lo, SizeMax: hi, PacketsMin: 2, PacketsMax: 5,
		Spacing: 700 * time.Millisecond, DomainSuffix: "gw.",
	}
}

// speakerControl builds the control-flow set of a smart speaker: many
// persistent connections with second-to-minutes heartbeats.
func speakerControl() []PeriodicFlow {
	return []PeriodicFlow{
		{DomainSuffix: "heartbeat.", Period: 30 * time.Second, Size: 123, Proto: "tcp", Dir: flows.DirOutbound, TLS: packet.VersionTLS12},
		{DomainSuffix: "heartbeat.", Period: 30 * time.Second, Size: 66, Proto: "tcp", Dir: flows.DirInbound, TLS: 0},
		{DomainSuffix: "metrics.", Period: 5 * time.Minute, Size: 540, Proto: "tcp", Dir: flows.DirOutbound, TLS: packet.VersionTLS12},
		{DomainSuffix: "time.", Period: 64 * time.Second, Size: 90, Proto: "udp", Dir: flows.DirOutbound, FreshPort: true},
		{DomainSuffix: "time.", Period: 64 * time.Second, Size: 90, Proto: "udp", Dir: flows.DirInbound, FreshPort: true},
		{DomainSuffix: "push.", Period: 3 * time.Minute, Size: 211, Proto: "tcp", Dir: flows.DirInbound, TLS: packet.VersionTLS13},
	}
}

func cameraControl() []PeriodicFlow {
	return []PeriodicFlow{
		{DomainSuffix: "keepalive.", Period: 20 * time.Second, Size: 97, Proto: "udp", Dir: flows.DirOutbound, FreshPort: true},
		{DomainSuffix: "keepalive.", Period: 20 * time.Second, Size: 97, Proto: "udp", Dir: flows.DirInbound, FreshPort: true},
		{DomainSuffix: "status.", Period: 2 * time.Minute, Size: 310, Proto: "tcp", Dir: flows.DirOutbound, TLS: packet.VersionTLS12},
		{DomainSuffix: "thumb.", Period: 10 * time.Minute, Size: 1280, Proto: "tcp", Dir: flows.DirOutbound, TLS: packet.VersionTLS12},
	}
}

func plugControl() []PeriodicFlow {
	return []PeriodicFlow{
		{DomainSuffix: "mqtt.", Period: 60 * time.Second, Size: 102, Proto: "tcp", Dir: flows.DirOutbound, TLS: packet.VersionTLS12},
		{DomainSuffix: "mqtt.", Period: 60 * time.Second, Size: 66, Proto: "tcp", Dir: flows.DirInbound},
	}
}

// StandardTestbed returns the 10 calibrated device profiles of Table 1.
func StandardTestbed() []*Profile {
	return []*Profile{
		{
			Name: "EchoDot4", Brand: "Amazon", Kind: "smart speaker", Site: "NJ", Quantity: 1,
			CompletionN: 12, Control: speakerControl(),
			UnpredControlPerDay: 30, RoutinesPerDay: 6,
			ManualShape: manualShape("cmd.", 180, 900), AutoShape: autoShape(150, 700), CtrlShape: ctrlShape(80, 400),
			ManualConfusion: 0.13, OtherConfusion: 0.015,
			CloudDomain: domains("avs.amazon.example"),
		},
		{
			Name: "HomeMini", Brand: "Google", Kind: "smart speaker", Site: "NJ", Quantity: 1,
			CompletionN: 15, Control: speakerControl(),
			UnpredControlPerDay: 24, RoutinesPerDay: 6,
			ManualShape: manualShape("cmd.", 220, 1100), AutoShape: autoShape(140, 650), CtrlShape: ctrlShape(70, 350),
			ManualConfusion: 0.04, OtherConfusion: 0.008,
			CloudDomain: domains("clients.google.example"),
		},
		{
			Name: "WyzeCam", Brand: "Wyze", Kind: "camera", Site: "NJ", Quantity: 3,
			CompletionN: 41, Control: cameraControl(),
			UnpredControlPerDay: 18, RoutinesPerDay: 4,
			ManualShape: cameraManualShape("rtsp.", 400, 1400), AutoShape: autoShape(200, 900), CtrlShape: ctrlShape(90, 500),
			ManualConfusion: 0.03, OtherConfusion: 0.006,
			StreamOnManual: true, StreamRate: 33 * time.Millisecond, StreamSize: 1378, StreamPackets: 90,
			CloudDomain: domains("api.wyze.example"),
		},
		{
			Name: "SP10", Brand: "Teckin", Kind: "smart plug", Site: "NJ", Quantity: 3,
			CompletionN: 1, SimpleRule: true, NotificationSize: 235,
			Control:             plugControl(),
			UnpredControlPerDay: 4, RoutinesPerDay: 8,
			ManualShape: EventShape{FirstDir: flows.DirInbound, Proto: "tcp", TLS: packet.VersionTLS12,
				TCPFlags: packet.TCPFlagPSH | packet.TCPFlagACK, SizeMin: 235, SizeMax: 235,
				PacketsMin: 2, PacketsMax: 2, Spacing: 200 * time.Millisecond, DomainSuffix: "gw."},
			AutoShape: EventShape{FirstDir: flows.DirInbound, Proto: "tcp", TLS: packet.VersionTLS12,
				TCPFlags: packet.TCPFlagPSH | packet.TCPFlagACK, SizeMin: 221, SizeMax: 221,
				PacketsMin: 2, PacketsMax: 2, Spacing: 200 * time.Millisecond, DomainSuffix: "gw."},
			CtrlShape:       ctrlShape(60, 200),
			ManualConfusion: 0, OtherConfusion: 0,
			CloudDomain: domains("iot.teckin.example"),
		},
		{
			Name: "Home", Brand: "Google", Kind: "smart speaker", Site: "IL", Quantity: 1,
			CompletionN: 20, Control: speakerControl(),
			UnpredControlPerDay: 36, RoutinesPerDay: 4,
			ManualShape: manualShape("cmd.", 160, 800), AutoShape: autoShape(150, 750), CtrlShape: ctrlShape(90, 450),
			ManualConfusion: 0.2, OtherConfusion: 0.02,
			CloudDomain: domains("home.google.example"),
		},
		{
			Name: "Nest-E", Brand: "Google", Kind: "thermostat", Site: "IL", Quantity: 2,
			CompletionN: 3, SimpleRule: true, NotificationSize: 267,
			Control: []PeriodicFlow{
				{DomainSuffix: "report.", Period: 90 * time.Second, Size: 340, Proto: "tcp", Dir: flows.DirOutbound, TLS: packet.VersionTLS12},
				{DomainSuffix: "report.", Period: 90 * time.Second, Size: 66, Proto: "tcp", Dir: flows.DirInbound},
				{DomainSuffix: "weather.", Period: 5 * time.Minute, Size: 720, Proto: "tcp", Dir: flows.DirInbound, TLS: packet.VersionTLS12},
			},
			// The paper's outlier: motion/presence sensing emits hourly-ish
			// bursts at slightly different intervals -> ~91% predictable.
			UnpredControlPerDay: 110, RoutinesPerDay: 6,
			ManualShape: EventShape{FirstDir: flows.DirInbound, Proto: "tcp", TLS: packet.VersionTLS12,
				TCPFlags: packet.TCPFlagPSH | packet.TCPFlagACK, SizeMin: 267, SizeMax: 267,
				PacketsMin: 3, PacketsMax: 5, Spacing: 250 * time.Millisecond, DomainSuffix: "gw."},
			AutoShape:       autoShape(180, 600),
			CtrlShape:       ctrlShape(100, 500),
			ManualConfusion: 0, OtherConfusion: 0,
			CloudDomain: domains("nest.google.example"),
		},
		{
			Name: "EchoDot3", Brand: "Amazon", Kind: "smart speaker", Site: "IL", Quantity: 1,
			CompletionN: 10, Control: speakerControl(),
			UnpredControlPerDay: 26, RoutinesPerDay: 5,
			ManualShape: manualShape("cmd.", 200, 950), AutoShape: autoShape(150, 700), CtrlShape: ctrlShape(80, 380),
			ManualConfusion: 0.055, OtherConfusion: 0.01,
			CloudDomain: domains("avs3.amazon.example"),
		},
		{
			Name: "E4", Brand: "Roborock", Kind: "robot vacuum", Site: "IL", Quantity: 1,
			CompletionN: 8,
			Control: []PeriodicFlow{
				{DomainSuffix: "mqtt.", Period: 45 * time.Second, Size: 150, Proto: "tcp", Dir: flows.DirOutbound, TLS: packet.VersionTLS12},
				{DomainSuffix: "mqtt.", Period: 45 * time.Second, Size: 66, Proto: "tcp", Dir: flows.DirInbound},
				{DomainSuffix: "map.", Period: 8 * time.Minute, Size: 2048, Proto: "tcp", Dir: flows.DirOutbound, TLS: packet.VersionTLS12},
			},
			UnpredControlPerDay: 20, RoutinesPerDay: 2,
			ManualShape: manualShape("cmd.", 250, 1200), AutoShape: autoShape(200, 1000), CtrlShape: ctrlShape(100, 600),
			ManualConfusion: 0.11, OtherConfusion: 0.025,
			CloudDomain: domains("iot.roborock.example"),
		},
		{
			Name: "Blink", Brand: "Amazon", Kind: "camera", Site: "IL", Quantity: 1,
			CompletionN: 30, Control: cameraControl(),
			UnpredControlPerDay: 14, RoutinesPerDay: 4,
			ManualShape: cameraManualShape("stream.", 380, 1300), AutoShape: autoShape(180, 800), CtrlShape: ctrlShape(80, 420),
			ManualConfusion: 0.02, OtherConfusion: 0.004,
			StreamOnManual: true, StreamRate: 40 * time.Millisecond, StreamSize: 1229, StreamPackets: 80,
			CloudDomain: domains("blink.amazon.example"),
		},
		{
			Name: "WP3", Brand: "Gosund", Kind: "smart plug", Site: "IL", Quantity: 2,
			CompletionN: 1, SimpleRule: true, NotificationSize: 235,
			Control:             plugControl(),
			UnpredControlPerDay: 4, RoutinesPerDay: 8,
			ManualShape: EventShape{FirstDir: flows.DirInbound, Proto: "tcp", TLS: packet.VersionTLS12,
				TCPFlags: packet.TCPFlagPSH | packet.TCPFlagACK, SizeMin: 235, SizeMax: 235,
				PacketsMin: 2, PacketsMax: 2, Spacing: 180 * time.Millisecond, DomainSuffix: "gw."},
			AutoShape: EventShape{FirstDir: flows.DirInbound, Proto: "tcp", TLS: packet.VersionTLS12,
				TCPFlags: packet.TCPFlagPSH | packet.TCPFlagACK, SizeMin: 219, SizeMax: 219,
				PacketsMin: 2, PacketsMax: 2, Spacing: 180 * time.Millisecond, DomainSuffix: "gw."},
			CtrlShape:       ctrlShape(60, 180),
			ManualConfusion: 0, OtherConfusion: 0,
			CloudDomain: domains("iot.gosund.example"),
		},
	}
}

// ByName returns the profile with the given name from the standard testbed.
func ByName(name string) *Profile {
	for _, p := range StandardTestbed() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// ComplexDevices returns the testbed minus the simple-rule devices — the
// set §4 trains ML classifiers for ("we exclude SP10, WP3, and Nest-E").
func ComplexDevices() []*Profile {
	var out []*Profile
	for _, p := range StandardTestbed() {
		if !p.SimpleRule {
			out = append(out, p)
		}
	}
	return out
}
