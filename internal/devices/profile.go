// Package devices models the 10 IoT devices of the paper's testbed
// (Table 1) as traffic generators: periodic control flows to the vendor
// cloud, routine-driven automated bursts, and manual command bursts whose
// shape depends on the device class (one 235 B notification packet for a
// smart plug, a 41-packet exchange plus a constant-rate stream for a
// camera). Per-location cloud domains reproduce the §3.3 observation that
// devices talk to different names under the Germany/Japan VPN exits.
//
// The models are calibrated against the paper's measurements: control
// traffic ~98% predictable (Nest-E the outlier near 91%), automated ~90%
// (0 for the two-packet plugs), manual worst except cameras (60-65% thanks
// to streaming), per-device manual-event classifiability matching Table 3's
// spread, and command-completion packet counts N in [1, 41].
package devices

import (
	"crypto/sha256"
	"net/netip"
	"time"

	"fiat/internal/dnssim"
	"fiat/internal/flows"
	"fiat/internal/netsim"
)

// PeriodicFlow is one predictable control flow: fixed size, destination,
// and period (Fig 1a shows eight of these for a Bose SoundTouch).
type PeriodicFlow struct {
	DomainSuffix string // prepended to the device's cloud domain
	Period       time.Duration
	Size         int
	Proto        string
	Dir          flows.Direction
	TLS          uint16
	// FreshPort makes every packet use a new ephemeral source port
	// (NTP/DNS-style query flows). These flows stay predictable under the
	// PortLess definition but fragment into one-packet buckets under
	// Classic — the gap Fig 1(b) shows.
	FreshPort bool
	// SizeDither is the probability that a packet's length deviates a few
	// bytes from the flow's nominal size (variable-length API responses).
	// Dithered packets are unpredictable at packet granularity and, more
	// importantly, randomize the byte sums of 5-second aggregates.
	SizeDither float64
}

// EventShape parameterizes the head packets of an unpredictable event —
// the features §4.1 classifies on.
type EventShape struct {
	FirstDir     flows.Direction
	Proto        string
	TLS          uint16
	TCPFlags     uint8
	SizeMin      int
	SizeMax      int
	PacketsMin   int
	PacketsMax   int
	Spacing      time.Duration // mean intra-event gap
	DomainSuffix string
	// RemotePort pins the server port (0 selects 443 for TCP or a random
	// high port for UDP). Vendor command channels and scheduler pushes use
	// characteristic ports (443, 8883/MQTT, ...), a feature the paper's
	// classifiers consume.
	RemotePort uint16
}

// Profile describes one device model.
type Profile struct {
	Name     string
	Brand    string
	Kind     string
	Site     string // "NJ" (controlled) or "IL" (household)
	Quantity int

	// CompletionN is the minimum packets needed for a manual command to
	// take effect (§3.3: 1 for the plugs, up to 41 for WyzeCam).
	CompletionN int
	// SimpleRule marks devices whose manual traffic is identified by a
	// fixed notification packet size instead of ML (SP10, WP3, Nest-E).
	SimpleRule bool
	// NotificationSize is that distinctive size (235/267 B in the paper).
	NotificationSize int

	// Control lists the periodic flows.
	Control []PeriodicFlow
	// UnpredControlPerDay is the rate of unpredictable control events
	// (sensor-triggered wakeups etc.; high for Nest-E).
	UnpredControlPerDay float64
	// RoutinesPerDay is the automation rate when routines are enabled.
	RoutinesPerDay float64

	// Shapes of each unpredictable event class.
	ManualShape, AutoShape, CtrlShape EventShape
	// ManualConfusion/OtherConfusion are the probabilities that a
	// manual/non-manual event presents with the other class's shape,
	// bounding what any classifier can reach (drives Table 3's spread).
	ManualConfusion, OtherConfusion float64
	// StreamOnManual adds a constant-rate media stream to manual events
	// (the cameras), making most of their bytes predictable.
	StreamOnManual bool
	StreamRate     time.Duration // inter-packet gap of the stream
	StreamSize     int
	StreamPackets  int

	// CloudDomain maps a location to the vendor domain the device uses
	// there (google.com vs google.co.jp in the paper).
	CloudDomain map[netsim.Location]string
}

// DomainAt returns the device's cloud domain for a location, falling back
// to the US name.
func (p *Profile) DomainAt(loc netsim.Location) string {
	if d, ok := p.CloudDomain[loc]; ok {
		return d
	}
	return p.CloudDomain[netsim.LocCloudUS]
}

// CommandCompletes reports whether a manual command succeeds when only the
// first n packets are allowed through — the §3.3 truncation experiment.
func (p *Profile) CommandCompletes(n int) bool { return n >= p.CompletionN }

// AddrFor deterministically assigns an IPv4 address to a domain name, so
// every run of the simulator agrees on the cloud addressing. Different
// locations yield different prefixes (geolocated anycast).
func AddrFor(domain string) netip.Addr {
	h := sha256.Sum256([]byte(domain))
	// Avoid reserved prefixes: map into 52.0.0.0/10-ish space plus the
	// hash spread.
	return netip.AddrFrom4([4]byte{52 + h[0]%8, h[1], h[2], 1 + h[3]%250})
}

// RegisterDomains installs every domain the profile may use (all locations,
// all control-flow suffixes) into the zone.
func (p *Profile) RegisterDomains(zone *dnssim.Zone) {
	for _, domain := range p.allDomains() {
		zone.Add(domain, AddrFor(domain))
	}
}

func (p *Profile) allDomains() []string {
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		if d != "" && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, base := range p.CloudDomain {
		add(base)
		add("sched." + base) // routine-body sync flow
		for _, cf := range p.Control {
			add(cf.DomainSuffix + base)
		}
		for _, sh := range []EventShape{p.ManualShape, p.AutoShape, p.CtrlShape} {
			add(sh.DomainSuffix + base)
		}
	}
	return out
}

func locSuffix(loc netsim.Location) string {
	switch loc {
	case netsim.LocCloudDE:
		return "de."
	case netsim.LocCloudJP:
		return "jp."
	default:
		return ""
	}
}

// domains builds the per-location map for a vendor base name.
func domains(base string) map[netsim.Location]string {
	m := make(map[netsim.Location]string, 3)
	for _, loc := range []netsim.Location{netsim.LocCloudUS, netsim.LocCloudDE, netsim.LocCloudJP} {
		m[loc] = locSuffix(loc) + base
	}
	return m
}
