// Package events groups unpredictable packets into "unpredictable events"
// using the paper's §3.2 procedure: consecutive unpredictable packets less
// than a gap threshold (5 s, chosen empirically) apart belong to the same
// event; a larger gap starts a new one. Events inherit a ground-truth
// category from their member packets when labels are available, and feed the
// manual-event classifier and the FIAT proxy pipeline.
package events

import (
	"time"

	"fiat/internal/flows"
)

// DefaultGap is the inter-packet threshold separating events (§3.2). The
// paper notes the choice "has very limited impact on the results"; the
// ablation bench sweeps it.
const DefaultGap = 5 * time.Second

// Event is one unpredictable event: a maximal run of unpredictable packets
// with gaps below the threshold.
type Event struct {
	// Packets are the member records in arrival order.
	Packets []flows.Record
	// Start and End are the first and last member timestamps.
	Start, End time.Time
	// Category is the event's ground-truth label (see Categorize).
	Category flows.Category
}

// Duration returns End - Start.
func (e *Event) Duration() time.Duration { return e.End.Sub(e.Start) }

// Len returns the member count.
func (e *Event) Len() int { return len(e.Packets) }

// Categorize derives the event label from member labels: manual wins over
// automated, automated over control. A user action mid-heartbeat should
// label the whole event manual — exactly how the paper labels events from
// interaction logs overlapping the window.
func (e *Event) Categorize() flows.Category {
	cat := flows.CategoryUnknown
	for _, p := range e.Packets {
		switch p.Category {
		case flows.CategoryManual:
			return flows.CategoryManual
		case flows.CategoryAutomated:
			cat = flows.CategoryAutomated
		case flows.CategoryControl:
			if cat == flows.CategoryUnknown {
				cat = flows.CategoryControl
			}
		}
	}
	return cat
}

// Group batches unpredictable records into events. recs must be in
// timestamp order; gap <= 0 selects DefaultGap. Every input record lands in
// exactly one event.
func Group(recs []flows.Record, gap time.Duration) []*Event {
	if gap <= 0 {
		gap = DefaultGap
	}
	var out []*Event
	var cur *Event
	for _, r := range recs {
		if cur != nil && r.Time.Sub(cur.End) < gap {
			cur.Packets = append(cur.Packets, r)
			cur.End = r.Time
			continue
		}
		cur = &Event{Packets: []flows.Record{r}, Start: r.Time, End: r.Time}
		out = append(out, cur)
	}
	for _, e := range out {
		e.Category = e.Categorize()
	}
	return out
}

// FromAnalyzer extracts the unpredictable packets from a completed analysis
// and groups them.
func FromAnalyzer(a *flows.Analyzer, gap time.Duration) []*Event {
	marks := a.Predictable()
	recs := a.Records()
	var unpred []flows.Record
	for i, m := range marks {
		if !m {
			unpred = append(unpred, recs[i])
		}
	}
	return Group(unpred, gap)
}

// Grouper is the streaming form used by the proxy: packets judged
// unpredictable are added one at a time; a finished event is emitted once
// the gap elapses (detected on the next Add or via Flush).
//
// A Grouper keeps one spare Event for reuse: callers that are done with a
// finished event hand it back via Recycle, and the next Add that starts an
// event reuses its backing Packets slice instead of allocating. On a
// steady-state pipeline this makes event grouping allocation-free once the
// spare's capacity has grown to the workload's event size.
type Grouper struct {
	gap   time.Duration
	cur   *Event
	spare *Event
}

// NewGrouper builds a streaming grouper; gap <= 0 selects DefaultGap.
func NewGrouper(gap time.Duration) *Grouper {
	if gap <= 0 {
		gap = DefaultGap
	}
	return &Grouper{gap: gap}
}

// Add ingests one unpredictable record. When the record starts a new event,
// the previous (now complete) event is returned; otherwise nil.
func (g *Grouper) Add(r flows.Record) *Event {
	if g.cur != nil && r.Time.Sub(g.cur.End) < g.gap {
		g.cur.Packets = append(g.cur.Packets, r)
		g.cur.End = r.Time
		return nil
	}
	done := g.finish()
	if sp := g.spare; sp != nil {
		g.spare = nil
		sp.Packets = append(sp.Packets[:0], r)
		sp.Start, sp.End = r.Time, r.Time
		sp.Category = flows.CategoryUnknown
		g.cur = sp
	} else {
		g.cur = &Event{Packets: []flows.Record{r}, Start: r.Time, End: r.Time}
	}
	return done
}

// Recycle hands a finished event back for reuse by a later Add. Only events
// this grouper emitted (from Add or Flush) and that the caller no longer
// references may be recycled; the in-progress event is refused. Nil is a
// no-op so `g.Recycle(g.Add(r))` composes.
func (g *Grouper) Recycle(e *Event) {
	if e == nil || e == g.cur {
		return
	}
	e.Packets = e.Packets[:0]
	g.spare = e
}

// Current returns the in-progress event (nil when idle). The proxy uses it
// to act on an event before it is complete — decisions cannot wait for the
// 5 s gap.
func (g *Grouper) Current() *Event { return g.cur }

// Gap reports the configured inter-packet threshold.
func (g *Grouper) Gap() time.Duration { return g.gap }

// RestoreCurrent installs e as the in-progress event, replacing any current
// one. Snapshot recovery uses it to resume a grouper mid-event; e must be
// the un-finished form (Category unset), exactly as Current would have
// returned it when the snapshot was taken.
func (g *Grouper) RestoreCurrent(e *Event) { g.cur = e }

// Expired reports whether the in-progress event is already complete at the
// given instant (the gap has elapsed with no new packets).
func (g *Grouper) Expired(now time.Time) bool {
	return g.cur != nil && now.Sub(g.cur.End) >= g.gap
}

// Flush closes and returns the in-progress event, if any.
func (g *Grouper) Flush() *Event { return g.finish() }

func (g *Grouper) finish() *Event {
	e := g.cur
	g.cur = nil
	if e != nil {
		e.Category = e.Categorize()
	}
	return e
}
