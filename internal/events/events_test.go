package events

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"fiat/internal/flows"
)

var t0 = time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)

func rec(offset time.Duration, cat flows.Category) flows.Record {
	return flows.Record{
		Time: t0.Add(offset), Size: 100, Proto: "tcp",
		RemoteIP: netip.MustParseAddr("52.0.0.1"), Category: cat,
	}
}

func TestGroupSplitsOnGap(t *testing.T) {
	recs := []flows.Record{
		rec(0, flows.CategoryManual),
		rec(time.Second, flows.CategoryManual),
		rec(2*time.Second, flows.CategoryManual),
		rec(10*time.Second, flows.CategoryControl), // 8 s gap -> new event
		rec(11*time.Second, flows.CategoryControl),
	}
	evs := Group(recs, 0)
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Len() != 3 || evs[1].Len() != 2 {
		t.Fatalf("sizes = %d, %d", evs[0].Len(), evs[1].Len())
	}
	if evs[0].Category != flows.CategoryManual || evs[1].Category != flows.CategoryControl {
		t.Fatalf("categories = %v, %v", evs[0].Category, evs[1].Category)
	}
}

func TestGapIsStrict(t *testing.T) {
	// Paper: T2-T1 < 5 s extends; the procedure ends when the gap exceeds
	// the threshold. A gap of exactly 5 s starts a new event.
	recs := []flows.Record{rec(0, 0), rec(5*time.Second, 0)}
	if evs := Group(recs, 0); len(evs) != 2 {
		t.Fatalf("events = %d, want 2 at exactly the gap", len(evs))
	}
	recs = []flows.Record{rec(0, 0), rec(5*time.Second-time.Millisecond, 0)}
	if evs := Group(recs, 0); len(evs) != 1 {
		t.Fatalf("events = %d, want 1 just under the gap", len(evs))
	}
}

func TestChainedEventExtension(t *testing.T) {
	// Each packet 4 s after the previous: one long event even though the
	// first and last are far apart.
	var recs []flows.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, rec(time.Duration(i)*4*time.Second, 0))
	}
	evs := Group(recs, 0)
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	if evs[0].Duration() != 36*time.Second {
		t.Fatalf("duration = %v", evs[0].Duration())
	}
}

func TestManualDominatesLabels(t *testing.T) {
	recs := []flows.Record{
		rec(0, flows.CategoryControl),
		rec(time.Second, flows.CategoryManual),
		rec(2*time.Second, flows.CategoryAutomated),
	}
	evs := Group(recs, 0)
	if evs[0].Category != flows.CategoryManual {
		t.Fatalf("category = %v, want manual", evs[0].Category)
	}
}

func TestAutomatedDominatesControl(t *testing.T) {
	recs := []flows.Record{
		rec(0, flows.CategoryControl),
		rec(time.Second, flows.CategoryAutomated),
	}
	evs := Group(recs, 0)
	if evs[0].Category != flows.CategoryAutomated {
		t.Fatalf("category = %v, want automated", evs[0].Category)
	}
}

func TestEveryPacketInExactlyOneEvent(t *testing.T) {
	f := func(gaps []uint16) bool {
		if len(gaps) > 100 {
			gaps = gaps[:100]
		}
		var recs []flows.Record
		cur := time.Duration(0)
		for _, g := range gaps {
			cur += time.Duration(g) * 100 * time.Millisecond
			recs = append(recs, rec(cur, 0))
		}
		evs := Group(recs, 0)
		total := 0
		for _, e := range evs {
			total += e.Len()
		}
		return total == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEventInvariants(t *testing.T) {
	// Within an event all consecutive gaps < threshold; between events the
	// gap >= threshold.
	f := func(gaps []uint16) bool {
		if len(gaps) > 60 {
			gaps = gaps[:60]
		}
		var recs []flows.Record
		cur := time.Duration(0)
		for _, g := range gaps {
			cur += time.Duration(g%120) * 100 * time.Millisecond
			recs = append(recs, rec(cur, 0))
		}
		evs := Group(recs, 0)
		for i, e := range evs {
			for j := 1; j < len(e.Packets); j++ {
				if e.Packets[j].Time.Sub(e.Packets[j-1].Time) >= DefaultGap {
					return false
				}
			}
			if i > 0 && e.Start.Sub(evs[i-1].End) < DefaultGap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGrouperStreaming(t *testing.T) {
	g := NewGrouper(0)
	if done := g.Add(rec(0, flows.CategoryManual)); done != nil {
		t.Fatal("first Add returned a finished event")
	}
	if done := g.Add(rec(time.Second, flows.CategoryManual)); done != nil {
		t.Fatal("in-gap Add returned a finished event")
	}
	done := g.Add(rec(10*time.Second, flows.CategoryControl))
	if done == nil || done.Len() != 2 || done.Category != flows.CategoryManual {
		t.Fatalf("finished event = %+v", done)
	}
	if g.Current() == nil || g.Current().Len() != 1 {
		t.Fatalf("current = %+v", g.Current())
	}
	last := g.Flush()
	if last == nil || last.Len() != 1 || g.Current() != nil {
		t.Fatalf("flush = %+v", last)
	}
}

func TestGrouperExpired(t *testing.T) {
	g := NewGrouper(0)
	g.Add(rec(0, 0))
	if g.Expired(t0.Add(2 * time.Second)) {
		t.Fatal("expired too early")
	}
	if !g.Expired(t0.Add(6 * time.Second)) {
		t.Fatal("not expired after gap")
	}
}

func TestGrouperFlushEmpty(t *testing.T) {
	g := NewGrouper(0)
	if g.Flush() != nil {
		t.Fatal("Flush on empty grouper returned an event")
	}
}

func TestFromAnalyzer(t *testing.T) {
	a := flows.NewAnalyzer(flows.ModePortLess)
	// Periodic background (predictable after warmup) + a 3-packet burst.
	for i := 0; i < 10; i++ {
		a.Observe(flows.Record{Time: t0.Add(time.Duration(i) * time.Minute), Size: 100,
			Proto: "tcp", RemoteIP: netip.MustParseAddr("52.0.0.1"), RemoteDomain: "cloud.example",
			Category: flows.CategoryControl})
	}
	for i := 0; i < 3; i++ {
		a.Observe(flows.Record{Time: t0.Add(30*time.Second + time.Duration(i)*700*time.Millisecond),
			Size: 640 + 17*i, Proto: "tcp", RemoteIP: netip.MustParseAddr("34.9.9.9"),
			RemoteDomain: "app.example", Category: flows.CategoryManual})
	}
	evs := FromAnalyzer(a, 0)
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1 (burst only)", len(evs))
	}
	if evs[0].Len() != 3 || evs[0].Category != flows.CategoryManual {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestGroupEmpty(t *testing.T) {
	if evs := Group(nil, 0); len(evs) != 0 {
		t.Fatalf("events = %v", evs)
	}
}
