package events_test

import (
	"fmt"
	"time"

	"fiat/internal/events"
	"fiat/internal/flows"
)

// Grouping the §3.2 way: packets under 5 s apart share an event; a larger
// gap starts the next one. The event label follows the strongest member
// label (manual > automated > control).
func ExampleGroup() {
	base := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	recs := []flows.Record{
		{Time: base, Size: 420, Category: flows.CategoryManual},
		{Time: base.Add(2 * time.Second), Size: 66, Category: flows.CategoryControl},
		{Time: base.Add(20 * time.Second), Size: 130, Category: flows.CategoryControl},
	}
	for _, e := range events.Group(recs, 0) {
		fmt.Printf("%d packet(s), %s\n", e.Len(), e.Category)
	}
	// Output:
	// 2 packet(s), manual
	// 1 packet(s), control
}
