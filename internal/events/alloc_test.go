package events

import (
	"testing"
	"time"

	"fiat/internal/flows"
)

// TestEventGroupingZeroAllocs pins the Grouper's steady-state contract: once
// the spare event's backing array has grown to the workload's event size,
// the add → finish → recycle cycle performs zero heap allocations — the
// guarantee the async pipeline's event stage leans on.
func TestEventGroupingZeroAllocs(t *testing.T) {
	g := NewGrouper(DefaultGap)
	at := time.Unix(0, 0).UTC()
	rec := func() flows.Record {
		return flows.Record{Time: at, Size: 300, Proto: "tcp", Dir: flows.DirInbound, Category: flows.CategoryAutomated}
	}
	const perEvent = 4
	cycle := func() *Event {
		var done *Event
		for i := 0; i < perEvent; i++ {
			if d := g.Add(rec()); d != nil {
				done = d
			}
			at = at.Add(time.Second)
		}
		at = at.Add(DefaultGap + time.Second) // next cycle starts a new event
		return done
	}
	// Warm-up: grow the current and spare events to the steady-state width.
	for i := 0; i < 3; i++ {
		g.Recycle(cycle())
	}

	allocs := testing.AllocsPerRun(500, func() {
		done := cycle()
		if done == nil || done.Len() != perEvent {
			t.Fatalf("cycle finished %+v, want a %d-packet event", done, perEvent)
		}
		if done.Category != flows.CategoryAutomated {
			t.Fatalf("finished event categorized %v, want automated", done.Category)
		}
		g.Recycle(done)
	})
	if allocs != 0 {
		t.Fatalf("grouping cycle allocates %v/op, want 0", allocs)
	}

	// Flush-based cycles recycle too.
	allocs = testing.AllocsPerRun(200, func() {
		for i := 0; i < perEvent; i++ {
			g.Recycle(g.Add(rec()))
			at = at.Add(time.Second)
		}
		g.Recycle(g.Flush())
		at = at.Add(DefaultGap + time.Second)
	})
	if allocs != 0 {
		t.Fatalf("flush cycle allocates %v/op, want 0", allocs)
	}
}

// TestGrouperRecycleSafety: recycling nil or the in-progress event is
// refused, and a recycled event's array really is reused by the next Add.
func TestGrouperRecycleSafety(t *testing.T) {
	g := NewGrouper(0)
	at := time.Unix(0, 0).UTC()
	g.Recycle(nil) // no-op
	g.Add(flows.Record{Time: at})
	cur := g.Current()
	g.Recycle(cur) // refused: in-progress
	if g.Current() != cur || cur.Len() != 1 {
		t.Fatal("recycling the in-progress event must be refused")
	}
	at = at.Add(DefaultGap + time.Second)
	done := g.Add(flows.Record{Time: at})
	if done != cur {
		t.Fatal("gap crossing should finish the first event")
	}
	g.Recycle(done)
	at = at.Add(DefaultGap + time.Second)
	prev := g.Current()
	finished := g.Add(flows.Record{Time: at})
	if finished != prev {
		t.Fatal("second event should finish on the next gap crossing")
	}
	if g.Current() != done {
		t.Fatal("Add after Recycle should reuse the recycled event")
	}
}
