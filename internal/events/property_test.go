package events

import (
	"math/rand"
	"testing"
	"time"

	"fiat/internal/flows"
	"fiat/internal/simclock"
)

// randTimestamps draws a monotone timestamp sequence whose inter-arrivals
// straddle the gap threshold: mostly sub-gap bursts with occasional
// above-gap silences, plus the adversarial exact-boundary value.
func randTimestamps(rng *rand.Rand, n int, gap time.Duration) []time.Time {
	out := make([]time.Time, n)
	at := simclock.Epoch
	for i := range out {
		out[i] = at
		var step time.Duration
		switch rng.Intn(10) {
		case 0, 1: // silence: new event
			step = gap + time.Duration(rng.Int63n(int64(10*gap)))
		case 2: // exactly the threshold: must start a new event
			step = gap
		case 3: // one nanosecond under: must extend the event
			step = gap - time.Nanosecond
		default: // burst
			step = time.Duration(rng.Int63n(int64(gap)))
		}
		at = at.Add(step)
	}
	return out
}

func recsAt(times []time.Time) []flows.Record {
	recs := make([]flows.Record, len(times))
	for i, ts := range times {
		recs[i] = flows.Record{Time: ts, Size: 100 + i%7, Proto: "tcp", Category: flows.CategoryAutomated}
	}
	return recs
}

// TestGroupingInvariants asserts the §3.2 grouping invariants over
// randomized timestamp sequences: packet count conserved in order, no
// intra-event gap >= EventGap, and consecutive events separated by >= the
// gap.
func TestGroupingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 200; trial++ {
		gap := time.Duration(1+rng.Intn(10)) * time.Second
		n := 1 + rng.Intn(300)
		recs := recsAt(randTimestamps(rng, n, gap))
		evs := Group(recs, gap)

		total := 0
		for ei, e := range evs {
			if e.Len() == 0 {
				t.Fatalf("trial %d: empty event %d", trial, ei)
			}
			if !e.Start.Equal(e.Packets[0].Time) || !e.End.Equal(e.Packets[e.Len()-1].Time) {
				t.Fatalf("trial %d: event %d bounds [%v,%v] disagree with members", trial, ei, e.Start, e.End)
			}
			for j := 1; j < e.Len(); j++ {
				if d := e.Packets[j].Time.Sub(e.Packets[j-1].Time); d >= gap {
					t.Fatalf("trial %d: event %d has intra-event gap %v >= %v", trial, ei, d, gap)
				}
			}
			if ei > 0 {
				if d := e.Start.Sub(evs[ei-1].End); d < gap {
					t.Fatalf("trial %d: events %d,%d separated by %v < %v", trial, ei-1, ei, d, gap)
				}
			}
			// Conservation with order: members are exactly the next
			// slice of the input.
			for j, p := range e.Packets {
				if !p.Time.Equal(recs[total+j].Time) || p.Size != recs[total+j].Size {
					t.Fatalf("trial %d: event %d reordered or altered packet %d", trial, ei, j)
				}
			}
			total += e.Len()
		}
		if total != n {
			t.Fatalf("trial %d: %d packets grouped, want %d", trial, total, n)
		}
	}
}

// TestGrouperMatchesBatchGroup checks the streaming Grouper (the proxy's
// form) emits exactly the events of the batch Group over the same randomized
// sequences — the equivalence the sharded engine's per-device groupers rely
// on.
func TestGrouperMatchesBatchGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(54321))
	for trial := 0; trial < 100; trial++ {
		gap := time.Duration(1+rng.Intn(8)) * time.Second
		n := 1 + rng.Intn(200)
		recs := recsAt(randTimestamps(rng, n, gap))

		want := Group(recs, gap)
		g := NewGrouper(gap)
		var got []*Event
		for _, r := range recs {
			if done := g.Add(r); done != nil {
				got = append(got, done)
			}
		}
		if done := g.Flush(); done != nil {
			got = append(got, done)
		}

		if len(got) != len(want) {
			t.Fatalf("trial %d: streaming produced %d events, batch %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Len() != want[i].Len() || !got[i].Start.Equal(want[i].Start) ||
				!got[i].End.Equal(want[i].End) || got[i].Category != want[i].Category {
				t.Fatalf("trial %d: event %d differs: streaming {len %d %v..%v %v} batch {len %d %v..%v %v}",
					trial, i,
					got[i].Len(), got[i].Start, got[i].End, got[i].Category,
					want[i].Len(), want[i].Start, want[i].End, want[i].Category)
			}
		}
	}
}
