package cryptoutil

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// RFC 5869 Appendix A, test case 1 (SHA-256).
func TestHKDFRFC5869Vector1(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	wantPRK, _ := hex.DecodeString("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM, _ := hex.DecodeString("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := HKDFExtract(salt, ikm)
	if !bytes.Equal(prk, wantPRK) {
		t.Fatalf("PRK = %x", prk)
	}
	okm, err := HKDFExpand(prk, info, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x", okm)
	}
}

// RFC 5869 Appendix A, test case 3 (zero-length salt and info).
func TestHKDFRFC5869Vector3(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM, _ := hex.DecodeString("8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	okm, err := HKDF(ikm, nil, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x", okm)
	}
}

func TestHKDFLengths(t *testing.T) {
	if _, err := HKDFExpand([]byte("prk"), nil, 0); err == nil {
		t.Fatal("length 0 accepted")
	}
	if _, err := HKDFExpand([]byte("prk"), nil, 255*32+1); err == nil {
		t.Fatal("oversize accepted")
	}
	out, err := HKDFExpand(HKDFExtract(nil, []byte("x")), nil, 100)
	if err != nil || len(out) != 100 {
		t.Fatalf("len = %d, err = %v", len(out), err)
	}
}

func TestHKDFInfoSeparation(t *testing.T) {
	a, _ := HKDF([]byte("secret"), nil, []byte("client"), 32)
	b, _ := HKDF([]byte("secret"), nil, []byte("server"), 32)
	if bytes.Equal(a, b) {
		t.Fatal("different info produced identical keys")
	}
}

func TestConstantTimeEqual(t *testing.T) {
	if !ConstantTimeEqual([]byte("abc"), []byte("abc")) {
		t.Fatal("equal strings compared unequal")
	}
	if ConstantTimeEqual([]byte("abc"), []byte("abd")) {
		t.Fatal("unequal strings compared equal")
	}
	if ConstantTimeEqual([]byte("abc"), []byte("ab")) {
		t.Fatal("different lengths compared equal")
	}
}
