// Package cryptoutil holds the small cryptographic helpers shared by the
// keystore and the QUIC-like transport: HKDF (RFC 5869) over HMAC-SHA-256
// and constant-time token comparison. Stdlib-only; primitives come from
// crypto/hmac and crypto/sha256.
package cryptoutil

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
)

// HKDFExtract derives a pseudorandom key from input keying material.
func HKDFExtract(salt, ikm []byte) []byte {
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	m := hmac.New(sha256.New, salt)
	m.Write(ikm)
	return m.Sum(nil)
}

// HKDFExpand derives length bytes of output keying material from a PRK.
func HKDFExpand(prk, info []byte, length int) ([]byte, error) {
	if length <= 0 || length > 255*sha256.Size {
		return nil, fmt.Errorf("cryptoutil: invalid HKDF length %d", length)
	}
	var out, prev []byte
	for counter := byte(1); len(out) < length; counter++ {
		m := hmac.New(sha256.New, prk)
		m.Write(prev)
		m.Write(info)
		m.Write([]byte{counter})
		prev = m.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length], nil
}

// HKDF combines extract and expand.
func HKDF(secret, salt, info []byte, length int) ([]byte, error) {
	return HKDFExpand(HKDFExtract(salt, secret), info, length)
}

// ConstantTimeEqual reports whether two byte strings are equal without
// leaking the mismatch position.
func ConstantTimeEqual(a, b []byte) bool {
	return len(a) == len(b) && subtle.ConstantTimeCompare(a, b) == 1
}
