// Package report renders experiment results as a single self-contained
// HTML page — the artifact a reproduction hand-off wants: every regenerated
// table and figure, its key metrics, and the run parameters, viewable
// without tooling.
package report

import (
	"fmt"
	"html"
	"sort"
	"strings"
	"time"

	"fiat/internal/experiments"
)

// Meta describes the run being reported.
type Meta struct {
	Title     string
	Scale     string
	Seed      int64
	Generated time.Time
	// PaperRef cites the reproduced paper.
	PaperRef string
}

// HTML renders the results into one page.
func HTML(meta Meta, results []experiments.Result) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(meta.Title))
	b.WriteString(`<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { border-bottom: 3px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; }
pre { background: #f6f6f8; border: 1px solid #ddd; border-radius: 6px; padding: 1rem; overflow-x: auto; font-size: .82rem; line-height: 1.35; }
.meta { color: #555; font-size: .9rem; }
.metrics { font-size: .82rem; color: #333; background: #eef3ee; border-radius: 6px; padding: .6rem 1rem; }
.metrics code { background: none; }
nav ul { columns: 3; list-style: none; padding-left: 0; }
nav a { text-decoration: none; color: #0b5394; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(meta.Title))
	fmt.Fprintf(&b, "<p class=\"meta\">%s<br>scale=%s seed=%d · generated %s</p>\n",
		html.EscapeString(meta.PaperRef), html.EscapeString(meta.Scale), meta.Seed,
		meta.Generated.UTC().Format(time.RFC3339))

	b.WriteString("<nav><ul>\n")
	for _, r := range results {
		fmt.Fprintf(&b, "<li><a href=\"#%s\">%s — %s</a></li>\n",
			html.EscapeString(r.ID), html.EscapeString(r.ID), html.EscapeString(r.Title))
	}
	b.WriteString("</ul></nav>\n")

	for _, r := range results {
		fmt.Fprintf(&b, "<h2 id=%q>%s — %s</h2>\n",
			html.EscapeString(r.ID), html.EscapeString(r.ID), html.EscapeString(r.Title))
		fmt.Fprintf(&b, "<pre>%s</pre>\n", html.EscapeString(r.Text))
		if len(r.Metrics) > 0 {
			keys := make([]string, 0, len(r.Metrics))
			for k := range r.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString("<p class=\"metrics\">")
			for i, k := range keys {
				if i > 0 {
					b.WriteString(" · ")
				}
				fmt.Fprintf(&b, "<code>%s=%.4g</code>", html.EscapeString(k), r.Metrics[k])
			}
			b.WriteString("</p>\n")
		}
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}
