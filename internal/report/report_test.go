package report

import (
	"strings"
	"testing"
	"time"

	"fiat/internal/experiments"
)

func sample() []experiments.Result {
	return []experiments.Result{
		{ID: "fig1b", Title: "CDF <figure>", Text: "line1\nline2 & more\n",
			Metrics: map[string]float64{"b_metric": 0.5, "a_metric": 1}},
		{ID: "table6", Title: "Accuracy", Text: "rows\n"},
	}
}

func TestHTMLStructure(t *testing.T) {
	out := HTML(Meta{
		Title: "FIAT reproduction", Scale: "full", Seed: 7,
		Generated: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
		PaperRef:  "Xiao & Varvello, CoNEXT 2022",
	}, sample())
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<h1>FIAT reproduction</h1>",
		"scale=full seed=7",
		`id="fig1b"`,
		`href="#table6"`,
		"CDF &lt;figure&gt;", // titles are escaped
		"line2 &amp; more",   // bodies are escaped
		"<code>a_metric=1</code>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Metrics render sorted: a_metric before b_metric.
	if strings.Index(out, "a_metric") > strings.Index(out, "b_metric") {
		t.Fatal("metrics not sorted")
	}
}

func TestHTMLEmptyResults(t *testing.T) {
	out := HTML(Meta{Title: "x"}, nil)
	if !strings.Contains(out, "</html>") {
		t.Fatal("incomplete document")
	}
}
