package keystore

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"

	"fiat/internal/cryptoutil"
)

// PairingAlias is the alias the shared attestation key is stored under on
// both sides after pairing.
const PairingAlias = "fiat-pairing"

// Pairing errors.
var (
	ErrBadPairingCode = errors.New("keystore: pairing code mismatch")
	ErrBadSignature   = errors.New("keystore: pairing signature invalid")
)

// PairingOffer is what the proxy displays (QR code / sound) during local
// pairing: a fresh secret plus the proxy's identity.
type PairingOffer struct {
	Code     []byte // 32-byte pairing secret, transferred out of band
	ProxyID  ed25519.PublicKey
	ProxySig []byte // proxy's signature over the code
}

// PairingResponse is the phone's answer, binding its identity to the code.
type PairingResponse struct {
	PhoneID  ed25519.PublicKey
	PhoneSig []byte // phone's signature over the code
}

// DerivePairingKey derives the shared attestation key from an out-of-band
// pairing code — the computation both sides of the ceremony perform.
func DerivePairingKey(code []byte) ([]byte, error) {
	return cryptoutil.HKDF(code, nil, []byte("fiat-pairing-v1"), 32)
}

// NewPairingOffer creates the proxy-side offer and installs the derived
// session key into the proxy's store under the default alias. Proxies
// pairing multiple phones give each its own alias via NewPairingOfferAlias.
func NewPairingOffer(proxy *Store, rand io.Reader) (*PairingOffer, error) {
	return NewPairingOfferAlias(proxy, rand, PairingAlias)
}

// NewPairingOfferAlias creates an offer whose derived key is stored under
// the given proxy-side alias.
func NewPairingOfferAlias(proxy *Store, rand io.Reader, alias string) (*PairingOffer, error) {
	code := make([]byte, 32)
	if _, err := io.ReadFull(rand, code); err != nil {
		return nil, fmt.Errorf("keystore: pairing code: %w", err)
	}
	key, err := DerivePairingKey(code)
	if err != nil {
		return nil, err
	}
	if err := proxy.ImportKey(alias, key); err != nil {
		return nil, err
	}
	return &PairingOffer{
		Code:     code,
		ProxyID:  proxy.Identity(),
		ProxySig: proxy.SignIdentity(code),
	}, nil
}

// AcceptPairing runs the phone side: verify the proxy's signature over the
// out-of-band code, install the derived key, and emit a response the proxy
// can verify.
func AcceptPairing(phone *Store, offer *PairingOffer) (*PairingResponse, error) {
	if !VerifyIdentity(offer.ProxyID, offer.Code, offer.ProxySig) {
		return nil, ErrBadSignature
	}
	key, err := DerivePairingKey(offer.Code)
	if err != nil {
		return nil, err
	}
	if err := phone.ImportKey(PairingAlias, key); err != nil {
		return nil, err
	}
	return &PairingResponse{
		PhoneID:  phone.Identity(),
		PhoneSig: phone.SignIdentity(offer.Code),
	}, nil
}

// ConfirmPairing runs the proxy-side final check, returning the phone's
// now-authorized identity. The proxy "rejects any traffic... from an
// unauthorized device" (§5.4); this identity anchors that check.
func ConfirmPairing(offer *PairingOffer, resp *PairingResponse) (ed25519.PublicKey, error) {
	if !VerifyIdentity(resp.PhoneID, offer.Code, resp.PhoneSig) {
		return nil, ErrBadSignature
	}
	return resp.PhoneID, nil
}
