package keystore

import (
	"bytes"
	"math/rand"
	"testing"
)

// detRand is a deterministic io.Reader for reproducible key generation.
func detRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func newStore(t *testing.T, seed int64) *Store {
	t.Helper()
	s, err := New(detRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSealUnsealRoundTrip(t *testing.T) {
	s := newStore(t, 1)
	blob, err := s.Seal([]byte("attestation-key-material"), []byte("ctx"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s.Unseal(blob, []byte("ctx"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "attestation-key-material" {
		t.Fatalf("plaintext = %q", pt)
	}
}

func TestUnsealWrongEnclaveFails(t *testing.T) {
	a := newStore(t, 1)
	b := newStore(t, 2)
	blob, err := a.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Unseal(blob, nil); err == nil {
		t.Fatal("blob opened by a different enclave")
	}
}

func TestUnsealWrongAADFails(t *testing.T) {
	s := newStore(t, 3)
	blob, _ := s.Seal([]byte("secret"), []byte("aad-1"))
	if _, err := s.Unseal(blob, []byte("aad-2")); err == nil {
		t.Fatal("AAD mismatch accepted")
	}
}

func TestUnsealTamperedBlobFails(t *testing.T) {
	s := newStore(t, 4)
	blob, _ := s.Seal([]byte("secret"), nil)
	blob[len(blob)-1] ^= 1
	if _, err := s.Unseal(blob, nil); err == nil {
		t.Fatal("tampered blob accepted")
	}
}

func TestUnsealTruncatedBlobFails(t *testing.T) {
	s := newStore(t, 5)
	if _, err := s.Unseal([]byte{1, 2, 3}, nil); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

func TestSealRandomizedNonce(t *testing.T) {
	s := newStore(t, 6)
	a, _ := s.Seal([]byte("same"), nil)
	b, _ := s.Seal([]byte("same"), nil)
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same plaintext are identical")
	}
}

func TestMACAndVerify(t *testing.T) {
	s := newStore(t, 7)
	if err := s.ImportKey("k", []byte("key-material")); err != nil {
		t.Fatal(err)
	}
	mac, err := s.MAC("k", []byte("sensor-data"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.VerifyMAC("k", []byte("sensor-data"), mac) {
		t.Fatal("valid MAC rejected")
	}
	if s.VerifyMAC("k", []byte("tampered"), mac) {
		t.Fatal("MAC verified for different message")
	}
	if s.VerifyMAC("missing", []byte("sensor-data"), mac) {
		t.Fatal("MAC verified against missing key")
	}
}

func TestMACMissingKey(t *testing.T) {
	s := newStore(t, 8)
	if _, err := s.MAC("nope", []byte("x")); err == nil {
		t.Fatal("MAC with missing key succeeded")
	}
}

func TestImportKeyOnce(t *testing.T) {
	s := newStore(t, 9)
	if err := s.ImportKey("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.ImportKey("a", []byte("2")); err == nil {
		t.Fatal("duplicate alias accepted")
	}
	s.DeleteKey("a")
	if s.HasKey("a") {
		t.Fatal("key survives deletion")
	}
	if err := s.ImportKey("a", []byte("3")); err != nil {
		t.Fatal("re-import after delete failed")
	}
}

func TestDeriveKeyPurposeSeparation(t *testing.T) {
	s := newStore(t, 10)
	if err := s.ImportKey("root", []byte("shared-secret")); err != nil {
		t.Fatal(err)
	}
	a, err := s.DeriveKey("root", "quic-psk", 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.DeriveKey("root", "log-hmac", 32)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("purposes derived identical keys")
	}
	a2, _ := s.DeriveKey("root", "quic-psk", 32)
	if !bytes.Equal(a, a2) {
		t.Fatal("derivation not deterministic")
	}
}

func TestIdentitySignVerify(t *testing.T) {
	s := newStore(t, 11)
	sig := s.SignIdentity([]byte("challenge"))
	if !VerifyIdentity(s.Identity(), []byte("challenge"), sig) {
		t.Fatal("valid identity signature rejected")
	}
	if VerifyIdentity(s.Identity(), []byte("other"), sig) {
		t.Fatal("signature verified for other message")
	}
	other := newStore(t, 12)
	if VerifyIdentity(other.Identity(), []byte("challenge"), sig) {
		t.Fatal("signature verified under other identity")
	}
}

func TestPairingHappyPath(t *testing.T) {
	proxy := newStore(t, 20)
	phone := newStore(t, 21)
	offer, err := NewPairingOffer(proxy, detRand(22))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := AcceptPairing(phone, offer)
	if err != nil {
		t.Fatal(err)
	}
	id, err := ConfirmPairing(offer, resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(id, phone.Identity()) {
		t.Fatal("confirmed identity is not the phone's")
	}
	// Both sides now share the attestation key: a MAC by the phone must
	// verify at the proxy.
	mac, err := phone.MAC(PairingAlias, []byte("attestation"))
	if err != nil {
		t.Fatal(err)
	}
	if !proxy.VerifyMAC(PairingAlias, []byte("attestation"), mac) {
		t.Fatal("cross-device MAC failed after pairing")
	}
}

func TestPairingRejectsForgedOffer(t *testing.T) {
	proxy := newStore(t, 23)
	phone := newStore(t, 24)
	mitm := newStore(t, 25)
	offer, err := NewPairingOffer(proxy, detRand(26))
	if err != nil {
		t.Fatal(err)
	}
	// A LAN attacker substitutes their identity but cannot sign the code
	// with the proxy's key.
	forged := *offer
	forged.ProxyID = mitm.Identity()
	if _, err := AcceptPairing(phone, &forged); err == nil {
		t.Fatal("forged offer accepted")
	}
}

func TestPairingRejectsForgedResponse(t *testing.T) {
	proxy := newStore(t, 27)
	phone := newStore(t, 28)
	mitm := newStore(t, 29)
	offer, err := NewPairingOffer(proxy, detRand(30))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := AcceptPairing(phone, offer)
	if err != nil {
		t.Fatal(err)
	}
	forged := *resp
	forged.PhoneID = mitm.Identity()
	if _, err := ConfirmPairing(offer, &forged); err == nil {
		t.Fatal("forged response accepted")
	}
}

func TestPairingDerivedKeysMatchButDifferAcrossPairings(t *testing.T) {
	proxyA := newStore(t, 31)
	phoneA := newStore(t, 32)
	offerA, _ := NewPairingOffer(proxyA, detRand(33))
	if _, err := AcceptPairing(phoneA, offerA); err != nil {
		t.Fatal(err)
	}
	proxyB := newStore(t, 34)
	phoneB := newStore(t, 35)
	offerB, _ := NewPairingOffer(proxyB, detRand(36))
	if _, err := AcceptPairing(phoneB, offerB); err != nil {
		t.Fatal(err)
	}
	macA, _ := phoneA.MAC(PairingAlias, []byte("m"))
	macB, _ := phoneB.MAC(PairingAlias, []byte("m"))
	if bytes.Equal(macA, macB) {
		t.Fatal("two independent pairings share a key")
	}
}
