// Package keystore simulates the trusted hardware FIAT anchors its keys in:
// the phone's TEE-backed keystore (Android hardware keystore / Jetpack
// security) and the proxy's enclave (SGX in the paper). It provides sealed
// storage — secrets encrypted under a device-root key that never leaves the
// "enclave" — an ed25519 device identity, and the local pairing protocol
// that establishes the attestation keys shared between FIAT's app and the
// IoT proxy (§5.4 "Pairing").
//
// The threat-model property preserved: callers can sign/MAC with stored keys
// but cannot read them back in plaintext once sealed; an attacker with
// user-space access (spyware) holds handles, not keys.
package keystore

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"fiat/internal/cryptoutil"
)

// Errors returned by the keystore.
var (
	ErrNoKey      = errors.New("keystore: no such key")
	ErrSealedData = errors.New("keystore: sealed blob corrupt or wrong enclave")
	ErrKeyExists  = errors.New("keystore: key alias already present")
)

// Store is one device's simulated enclave. Create with New; the rootKey
// models the hardware fuse key and never leaves the struct.
type Store struct {
	mu      sync.RWMutex
	rootKey [32]byte
	rand    io.Reader
	secrets map[string][]byte // alias -> raw key material (enclave-resident)
	iD      ed25519.PrivateKey
	pub     ed25519.PublicKey
}

// New builds an enclave seeded from rand (crypto/rand.Reader in production,
// a deterministic reader in tests).
func New(rand io.Reader) (*Store, error) {
	s := &Store{rand: rand, secrets: make(map[string][]byte)}
	if _, err := io.ReadFull(rand, s.rootKey[:]); err != nil {
		return nil, fmt.Errorf("keystore: seeding root key: %w", err)
	}
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("keystore: generating identity: %w", err)
	}
	s.iD = priv
	s.pub = pub
	return s, nil
}

// Identity returns the device's public identity key.
func (s *Store) Identity() ed25519.PublicKey {
	return append(ed25519.PublicKey(nil), s.pub...)
}

// SignIdentity signs msg with the device identity key (used during pairing
// to bind the session secret to this device).
func (s *Store) SignIdentity(msg []byte) []byte {
	return ed25519.Sign(s.iD, msg)
}

// VerifyIdentity checks a signature against a peer's public identity.
func VerifyIdentity(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// ImportKey stores raw key material under alias. It fails if the alias is
// taken — key handles are create-once, like Android's keystore.
func (s *Store) ImportKey(alias string, material []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.secrets[alias]; ok {
		return ErrKeyExists
	}
	s.secrets[alias] = append([]byte(nil), material...)
	return nil
}

// DeleteKey removes an alias.
func (s *Store) DeleteKey(alias string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.secrets, alias)
}

// HasKey reports whether alias exists.
func (s *Store) HasKey(alias string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.secrets[alias]
	return ok
}

// MAC computes HMAC-SHA-256 over msg with the named key — the operation
// FIAT's app uses to authenticate sensor payloads. The key never crosses
// the API boundary.
func (s *Store) MAC(alias string, msg []byte) ([]byte, error) {
	s.mu.RLock()
	key, ok := s.secrets[alias]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoKey, alias)
	}
	m := hmac.New(sha256.New, key)
	m.Write(msg)
	return m.Sum(nil), nil
}

// VerifyMAC checks an HMAC produced by the peer holding the same alias.
func (s *Store) VerifyMAC(alias string, msg, mac []byte) bool {
	want, err := s.MAC(alias, msg)
	if err != nil {
		return false
	}
	return cryptoutil.ConstantTimeEqual(want, mac)
}

// DeriveKey expands the named key into purpose-bound subkey material
// without exposing the parent (e.g. the QUIC pre-shared key from the
// pairing secret).
func (s *Store) DeriveKey(alias string, purpose string, length int) ([]byte, error) {
	s.mu.RLock()
	key, ok := s.secrets[alias]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoKey, alias)
	}
	return cryptoutil.HKDF(key, nil, []byte("fiat-derive:"+purpose), length)
}

// Seal encrypts plaintext under the enclave root key (AES-256-GCM). The
// blob is only openable by this Store instance — sealed storage semantics.
func (s *Store) Seal(plaintext, aad []byte) ([]byte, error) {
	block, err := aes.NewCipher(s.rootKey[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(s.rand, nonce); err != nil {
		return nil, fmt.Errorf("keystore: nonce: %w", err)
	}
	return append(nonce, gcm.Seal(nil, nonce, plaintext, aad)...), nil
}

// Unseal decrypts a blob produced by Seal with the same aad.
func (s *Store) Unseal(blob, aad []byte) ([]byte, error) {
	block, err := aes.NewCipher(s.rootKey[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(blob) < gcm.NonceSize() {
		return nil, ErrSealedData
	}
	pt, err := gcm.Open(nil, blob[:gcm.NonceSize()], blob[gcm.NonceSize():], aad)
	if err != nil {
		return nil, ErrSealedData
	}
	return pt, nil
}
