package obs

import (
	"fmt"

	"fiat/internal/wire"
)

// RegistryStateVersion versions the serialized registry format.
const RegistryStateVersion uint16 = 1

// AppendState serializes every metric in the registry — counters, gauges,
// and histograms with their bounds, per-bucket counts, and sum — in sorted
// name order. The encoding is canonical: equal registry contents produce
// equal bytes, which is what lets crash-recovery arms compare whole obs
// registries byte-for-byte. Values are read with the same atomic loads the
// text Snapshot uses; call it from a quiesced proxy for an exact image.
func (r *Registry) AppendState(b []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	b = wire.AppendU16(b, RegistryStateVersion)
	names := sortedKeys(r.counters)
	b = wire.AppendU32(b, uint32(len(names)))
	for _, n := range names {
		b = wire.AppendString(b, n)
		b = wire.AppendI64(b, r.counters[n].Value())
	}
	names = sortedKeys(r.gauges)
	b = wire.AppendU32(b, uint32(len(names)))
	for _, n := range names {
		b = wire.AppendString(b, n)
		b = wire.AppendI64(b, r.gauges[n].Value())
	}
	names = sortedKeys(r.hists)
	b = wire.AppendU32(b, uint32(len(names)))
	for _, n := range names {
		h := r.hists[n]
		b = wire.AppendString(b, n)
		b = wire.AppendI64s(b, h.Bounds())
		b = wire.AppendI64s(b, h.BucketCounts())
		b = wire.AppendI64(b, h.Sum())
	}
	return b
}

// EncodeState returns the canonical serialized registry contents.
func (r *Registry) EncodeState() []byte { return r.AppendState(nil) }

// RestoreState overwrites the registry's metrics from a serialized image
// and returns the remaining bytes. Metrics are created as needed; a metric
// that already exists keeps its identity (live handles stay valid) and has
// its value stored over. A histogram that already exists must agree on
// bounds with the image — a mismatch means the snapshot was written by a
// differently-configured build, and restoring it would misattribute every
// observation, so it fails closed.
func (r *Registry) RestoreState(data []byte) ([]byte, error) {
	rd := wire.NewReader(data)
	if v := rd.U16(); rd.Err() == nil && v != RegistryStateVersion {
		return nil, fmt.Errorf("obs: registry state version %d, want %d", v, RegistryStateVersion)
	}
	nc := int(rd.U32())
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("obs: restore registry: %w", err)
	}
	type kv struct {
		name string
		val  int64
	}
	counters := make([]kv, 0, nc)
	for i := 0; i < nc; i++ {
		counters = append(counters, kv{rd.String(), rd.I64()})
	}
	ng := int(rd.U32())
	gauges := make([]kv, 0, ng)
	for i := 0; i < ng; i++ {
		gauges = append(gauges, kv{rd.String(), rd.I64()})
	}
	type hv struct {
		name   string
		bounds []int64
		counts []int64
		sum    int64
	}
	nh := int(rd.U32())
	hists := make([]hv, 0, nh)
	for i := 0; i < nh; i++ {
		hists = append(hists, hv{rd.String(), rd.I64s(), rd.I64s(), rd.I64()})
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("obs: restore registry: %w", err)
	}
	// Validate everything before mutating anything, so a corrupt image never
	// leaves the registry half-restored.
	for _, h := range hists {
		if len(h.counts) != len(h.bounds)+1 {
			return nil, fmt.Errorf("obs: histogram %q has %d buckets for %d bounds", h.name, len(h.counts), len(h.bounds))
		}
		for i := 1; i < len(h.bounds); i++ {
			if h.bounds[i] <= h.bounds[i-1] {
				return nil, fmt.Errorf("obs: histogram %q bounds not ascending", h.name)
			}
		}
	}
	r.mu.Lock()
	for _, h := range hists {
		if exist, ok := r.hists[h.name]; ok {
			eb := exist.Bounds()
			same := len(eb) == len(h.bounds)
			for i := 0; same && i < len(eb); i++ {
				same = eb[i] == h.bounds[i]
			}
			if !same {
				r.mu.Unlock()
				return nil, fmt.Errorf("obs: histogram %q bounds differ from live registry", h.name)
			}
		}
	}
	for _, c := range counters {
		cc, ok := r.counters[c.name]
		if !ok {
			cc = &Counter{}
			r.counters[c.name] = cc
		}
		cc.v.Store(c.val)
	}
	for _, g := range gauges {
		gg, ok := r.gauges[g.name]
		if !ok {
			gg = &Gauge{}
			r.gauges[g.name] = gg
		}
		gg.v.Store(g.val)
	}
	for _, h := range hists {
		hh, ok := r.hists[h.name]
		if !ok {
			hh = NewHistogram(h.bounds)
			r.hists[h.name] = hh
		}
		for i, c := range h.counts {
			hh.counts[i].Store(c)
		}
		hh.sum.Store(h.sum)
	}
	r.mu.Unlock()
	return rd.Rest(), nil
}
