package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram of int64 observations (nanoseconds,
// bytes, counts — the unit is the caller's convention, conventionally part
// of the metric name). An observation v lands in the first bucket whose
// upper bound satisfies v <= bound; values above every bound land in the
// implicit overflow (+Inf) bucket. All mutation is atomic, so concurrent
// writers from every shard are safe, and because bucket counts and the sum
// are pure sums, any interleaving produces the same final state.
type Histogram struct {
	bounds []int64        // ascending, immutable after construction
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. Unsorted or duplicate bounds are a programming error and panic —
// a histogram with a silently reordered scale would misattribute every
// observation.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBounds returns n strictly ascending bounds starting at start, each
// factor times the previous — the usual latency/size scale (e.g.
// ExpBounds(1000, 4, 8) covers 1 µs .. ~16 ms in nanoseconds).
func ExpBounds(start int64, factor float64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	if factor <= 1 {
		factor = 2
	}
	bounds := make([]int64, 0, n)
	v := float64(start)
	last := int64(0)
	for i := 0; i < n; i++ {
		b := int64(v)
		if b <= last {
			b = last + 1
		}
		bounds = append(bounds, b)
		last = b
		v *= factor
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[h.bucketFor(v)].Add(1)
	h.sum.Add(v)
}

func (h *Histogram) bucketFor(v int64) int {
	// Buckets are few (≤ ~32); a linear scan beats binary search overhead
	// and keeps the hot path branch-predictable.
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return append([]int64(nil), h.bounds...)
}

// BucketCounts returns a copy of the per-bucket counts; the last element is
// the overflow (+Inf) bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile returns an upper bound on the q-th quantile (q clamped to [0, 1])
// of the observed distribution: the upper bound of the first bucket whose
// cumulative count reaches rank ceil(q·n). Observations that landed in the
// overflow bucket report the largest finite bound — the histogram cannot
// resolve beyond its scale, and a caller comparing tail latencies against a
// ceiling wants the saturated answer, not +Inf. Zero observations yield 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	counts := h.BucketCounts()
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank && i < len(h.bounds) {
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Merge folds another histogram's observations into h. The two must share
// identical bounds — per-shard histograms merged into a global one are
// created from the same scale, so a mismatch is a programming error.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merge of mismatched histograms: %d vs %d buckets", len(h.bounds)+1, len(o.bounds)+1)
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return fmt.Errorf("obs: merge of mismatched histograms: bound[%d] %d vs %d", i, b, o.bounds[i])
		}
	}
	for i := range o.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.sum.Add(o.sum.Load())
	return nil
}
