package obs

import (
	"bytes"
	"testing"
)

func populatedRegistry() *Registry {
	r := NewRegistry()
	r.Counter("fiat_test_packets_total").Add(41)
	r.Counter("fiat_test_drops_total").Add(3)
	r.Counter(Label("fiat_test_decisions_total", "reason", "rule-hit")).Add(7)
	r.Gauge("fiat_test_depth").Set(12)
	h := r.Histogram("fiat_test_latency_ns", ExpBounds(1000, 4, 6))
	for _, v := range []int64{900, 5000, 5001, 300000, 9_000_000_000} {
		h.Observe(v)
	}
	return r
}

func TestRegistryStateRoundTrip(t *testing.T) {
	src := populatedRegistry()
	enc := src.EncodeState()

	dst := NewRegistry()
	rest, err := dst.RestoreState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	// The restored registry must be indistinguishable: same canonical state
	// bytes and same rendered text snapshot.
	if !bytes.Equal(dst.EncodeState(), enc) {
		t.Fatal("re-encode differs")
	}
	if got, want := dst.Snapshot(), src.Snapshot(); got != want {
		t.Fatalf("text snapshot differs:\n got: %q\nwant: %q", got, want)
	}
}

func TestRegistryRestorePreservesLiveHandles(t *testing.T) {
	src := populatedRegistry()
	dst := NewRegistry()
	// A handle resolved before restore must observe the restored value and
	// keep counting from it.
	c := dst.Counter("fiat_test_packets_total")
	h := dst.Histogram("fiat_test_latency_ns", ExpBounds(1000, 4, 6))
	if _, err := dst.RestoreState(src.EncodeState()); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 41 {
		t.Fatalf("pre-restore counter handle reads %d, want 41", c.Value())
	}
	c.Add(1)
	if dst.Counter("fiat_test_packets_total").Value() != 42 {
		t.Fatal("post-restore increment lost")
	}
	if h.Count() != 5 {
		t.Fatalf("pre-restore histogram handle reads count %d, want 5", h.Count())
	}
}

func TestRegistryRestoreRejectsBoundsMismatch(t *testing.T) {
	src := populatedRegistry()
	dst := NewRegistry()
	dst.Histogram("fiat_test_latency_ns", []int64{1, 2, 3})
	if _, err := dst.RestoreState(src.EncodeState()); err == nil {
		t.Fatal("bounds mismatch accepted")
	}
}

func TestRegistryRestoreRejectsCorruption(t *testing.T) {
	enc := populatedRegistry().EncodeState()
	if _, err := NewRegistry().RestoreState(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated state accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := NewRegistry().RestoreState(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}
