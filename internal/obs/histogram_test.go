package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	// Upper bounds are inclusive: v <= bound.
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {10, 0}, // at or below the first bound
		{11, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, 3}, {1 << 40, 3}, // overflow bucket
	}
	for _, c := range cases {
		if got := h.bucketFor(c.v); got != c.bucket {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := []int64{3, 2, 2, 2}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	var sum int64
	for _, c := range cases {
		sum += c.v
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %d, want %d", h.Sum(), sum)
	}
}

func TestHistogramOverflowBucketInSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("of_ns", []int64{5})
	h.Observe(6)
	h.Observe(7)
	snap := reg.Snapshot()
	if !strings.Contains(snap, "of_ns_bucket{le=\"5\"} 0\n") ||
		!strings.Contains(snap, "of_ns_bucket{le=\"+Inf\"} 2\n") {
		t.Fatalf("overflow not encoded:\n%s", snap)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unsorted bounds")
		}
	}()
	NewHistogram([]int64{10, 10})
}

func TestHistogramMergePerShard(t *testing.T) {
	// Model per-shard histograms folded into a global one: the merge must be
	// exactly the histogram a single sequential writer would have produced.
	bounds := []int64{10, 100}
	global := NewHistogram(bounds)
	reference := NewHistogram(bounds)
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = NewHistogram(bounds)
		for v := int64(0); v < 50; v++ {
			x := v * int64(i+1)
			shards[i].Observe(x)
			reference.Observe(x)
		}
	}
	for _, sh := range shards {
		if err := global.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	if gs, rs := global.Sum(), reference.Sum(); gs != rs {
		t.Fatalf("merged sum = %d, want %d", gs, rs)
	}
	gc, rc := global.BucketCounts(), reference.BucketCounts()
	for i := range gc {
		if gc[i] != rc[i] {
			t.Fatalf("merged buckets = %v, want %v", gc, rc)
		}
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a := NewHistogram([]int64{1, 2})
	if err := a.Merge(NewHistogram([]int64{1})); err == nil {
		t.Fatal("merge accepted different bucket count")
	}
	if err := a.Merge(NewHistogram([]int64{1, 3})); err == nil {
		t.Fatal("merge accepted different bounds")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestHistogramConcurrentWritersUnderRace(t *testing.T) {
	h := NewHistogram(ExpBounds(1, 2, 10))
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(seed + int64(i)%700)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	var bucketTotal int64
	for _, c := range h.BucketCounts() {
		bucketTotal += c
	}
	if bucketTotal != workers*perWorker {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*perWorker)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 90 observations <= 10, 9 in (10,100], 1 in (100,1000].
	for i := 0; i < 90; i++ {
		h.Observe(3)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50)
	}
	h.Observe(500)
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 10}, {0.5, 10}, {0.9, 10}, // rank 90 still in the first bucket
		{0.901, 100}, {0.99, 100},
		{0.991, 1000}, {1, 1000},
		{-1, 10}, {2, 1000}, // clamped
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	// Overflow observations saturate at the largest finite bound.
	o := NewHistogram([]int64{10})
	o.Observe(1 << 30)
	if got := o.Quantile(0.999); got != 10 {
		t.Fatalf("overflow quantile = %d, want the last finite bound 10", got)
	}
	if (*Histogram)(nil).Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(250, 4, 5)
	want := []int64{250, 1000, 4000, 16000, 64000}
	if len(b) != len(want) {
		t.Fatalf("bounds = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	// Degenerate parameters still yield strictly ascending bounds.
	b = ExpBounds(0, 0.5, 4)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("not ascending: %v", b)
		}
	}
	NewHistogram(b) // must not panic
}
