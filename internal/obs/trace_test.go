package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerCountsAndDeterministicDwell(t *testing.T) {
	reg := NewRegistry()
	// A frozen clock is the virtual-clock case: every dwell must be 0 so
	// traced snapshots are reproducible.
	frozen := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracer(reg, "p", func() time.Time { return frozen })

	for i := 0; i < 3; i++ {
		sp := tr.Begin(StageIntercept)
		sp.Enter(StageRules)
		sp.Enter(StageRules) // re-entering the same stage is a no-op
		sp.Enter(StageVerdict)
		sp.End()
		sp.End() // double End is a no-op
	}
	if got := reg.Counter(Label("p_stage_total", "stage", "intercept")).Value(); got != 3 {
		t.Fatalf("intercept count = %d", got)
	}
	if got := reg.Counter(Label("p_stage_total", "stage", "rules")).Value(); got != 3 {
		t.Fatalf("rules count = %d", got)
	}
	if got := reg.Counter(Label("p_stage_total", "stage", "grouping")).Value(); got != 0 {
		t.Fatalf("grouping count = %d", got)
	}
	h := reg.Histogram(Label("p_stage_ns", "stage", "verdict"), stageNanoBounds)
	if h.Count() != 3 || h.Sum() != 0 {
		t.Fatalf("verdict dwell count=%d sum=%d, want 3/0", h.Count(), h.Sum())
	}
}

func TestTracerMeasuresDwellWithMovingClock(t *testing.T) {
	reg := NewRegistry()
	now := time.Unix(0, 0)
	tr := NewTracer(reg, "p", func() time.Time {
		now = now.Add(100 * time.Nanosecond)
		return now
	})
	sp := tr.Begin(StageRules)
	sp.Enter(StageVerdict)
	sp.End()
	if sum := reg.Histogram(Label("p_stage_ns", "stage", "rules"), stageNanoBounds).Sum(); sum != 100 {
		t.Fatalf("rules dwell = %d, want 100", sum)
	}
}

func TestTracerNilClockStillCounts(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, "p", nil)
	sp := tr.Begin(StageClassify)
	sp.Enter(StageAttestCheck)
	sp.End()
	if got := reg.Counter(Label("p_stage_total", "stage", "attest-check")).Value(); got != 1 {
		t.Fatalf("attest-check count = %d", got)
	}
	h := reg.Histogram(Label("p_stage_ns", "stage", "classify"), stageNanoBounds)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("classify dwell count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestStageStrings(t *testing.T) {
	var names []string
	for _, s := range Stages() {
		names = append(names, s.String())
	}
	want := "intercept,rules,grouping,classify,attest-check,verdict"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("stages = %s, want %s", got, want)
	}
	if Stage(250).String() != "unknown" {
		t.Fatal("out-of-range stage name")
	}
}
