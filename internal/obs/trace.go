package obs

import "time"

// Stage identifies one segment of the proxy's per-packet pipeline (Fig 4
// order): frame interception/resolution, rule matching, event grouping,
// manual/non-manual classification, the attestation freshness check, and
// verdict accounting.
type Stage uint8

// Pipeline stages in execution order.
const (
	StageIntercept Stage = iota
	StageRules
	StageGrouping
	StageClassify
	StageAttestCheck
	StageVerdict
	numStages
)

var stageNames = [numStages]string{
	"intercept", "rules", "grouping", "classify", "attest-check", "verdict",
}

// String returns the stage's snapshot label.
func (s Stage) String() string {
	if s >= numStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists every pipeline stage in order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Tracer records per-stage entry counts and dwell times into a registry,
// under `<prefix>_stage_total{stage=...}` and `<prefix>_stage_ns{stage=...}`.
// The time source is injected (any simclock-style Now), so under a virtual
// clock every dwell is a deterministic 0 and traced snapshots stay
// byte-reproducible; under a real clock the histograms show where pipeline
// time goes. A nil *Tracer is a valid no-op.
type Tracer struct {
	now    func() time.Time
	counts [numStages]*Counter
	nanos  [numStages]*Histogram
}

// stageNanoBounds spans 250 ns .. ~4 ms, the plausible per-stage dwell range
// of the in-memory pipeline.
var stageNanoBounds = ExpBounds(250, 4, 8)

// NewTracer builds a tracer writing into reg under the metric prefix. now is
// the dwell-time source; nil disables timing (counts still record).
func NewTracer(reg *Registry, prefix string, now func() time.Time) *Tracer {
	if reg == nil {
		return nil
	}
	t := &Tracer{now: now}
	for s := Stage(0); s < numStages; s++ {
		t.counts[s] = reg.Counter(Label(prefix+"_stage_total", "stage", s.String()))
		t.nanos[s] = reg.Histogram(Label(prefix+"_stage_ns", "stage", s.String()), stageNanoBounds)
	}
	return t
}

// WithNow returns a tracer sharing this tracer's counters and histograms but
// reading time from a different source — the async pipeline hands each shard
// worker a view whose source returns the producer's once-per-batch timestamp,
// so per-packet stage accounting costs no clock reads. Dwells observed
// through such a view are 0, exactly what every engine observes under a
// virtual clock, so traced snapshots stay byte-comparable across engines
// wherever they are deterministic at all. A nil receiver stays nil.
func (t *Tracer) WithNow(now func() time.Time) *Tracer {
	if t == nil {
		return nil
	}
	clone := *t
	clone.now = now
	return &clone
}

// Span is one packet's walk through the pipeline. It is a small value meant
// to live on the caller's stack: obtain one with Begin, advance it with
// Enter at each stage boundary, and End it when the verdict is out.
type Span struct {
	t       *Tracer
	cur     Stage
	entered time.Time
	active  bool
}

// Begin opens a span in the given first stage.
func (t *Tracer) Begin(first Stage) Span {
	if t == nil {
		return Span{}
	}
	s := Span{t: t, cur: first, active: true}
	if t.now != nil {
		s.entered = t.now()
	}
	t.counts[first].Inc()
	return s
}

// Enter closes the current stage and opens the next. Entering the stage the
// span is already in is a no-op, so branchy pipeline code may call it
// defensively.
func (s *Span) Enter(next Stage) {
	if s.t == nil || !s.active || next == s.cur || next >= numStages {
		return
	}
	s.closeCurrent()
	s.cur = next
	s.t.counts[next].Inc()
}

// End closes the span's current stage. Ending twice is a no-op.
func (s *Span) End() {
	if s.t == nil || !s.active {
		return
	}
	s.closeCurrent()
	s.active = false
}

func (s *Span) closeCurrent() {
	if s.t.now == nil {
		s.t.nanos[s.cur].Observe(0)
		return
	}
	now := s.t.now()
	s.t.nanos[s.cur].Observe(now.Sub(s.entered).Nanoseconds())
	s.entered = now
}
