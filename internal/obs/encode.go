package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Snapshot renders every metric as a deterministic Prometheus-style text
// exposition: one `name value` line per scalar, and for each histogram the
// cumulative `_bucket{le=...}` series followed by `_sum` and `_count`.
// Lines are ordered by metric name (bucket order within a histogram), and
// every value is an exact integer — two registries holding equal metric
// states encode byte-identical snapshots, which is what lets the test suite
// diff a sharded run against a sequential one.
func (r *Registry) Snapshot() string {
	var sb strings.Builder
	_, _ = r.WriteTo(&sb)
	return sb.String()
}

// WriteTo streams the Snapshot encoding to w.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	units := make([]unit, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, name := range sortedKeys(r.counters) {
		c := r.counters[name]
		n := name
		units = append(units, unit{name, func(w io.Writer) (int, error) {
			return fmt.Fprintf(w, "%s %d\n", n, c.Value())
		}})
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		n := name
		units = append(units, unit{name, func(w io.Writer) (int, error) {
			return fmt.Fprintf(w, "%s %d\n", n, g.Value())
		}})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		n := name
		units = append(units, unit{name, func(w io.Writer) (int, error) {
			return writeHistogram(w, n, h)
		}})
	}
	// The kind-wise appends above are each sorted; a final stable sort by
	// name interleaves the kinds deterministically.
	sortUnitsByName(units)

	var total int64
	for _, u := range units {
		n, err := u.render(w)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// unit is one renderable snapshot entry.
type unit struct {
	name   string
	render func(io.Writer) (int, error)
}

func sortUnitsByName(units []unit) {
	// Insertion sort: the slice is a concatenation of three sorted runs and
	// is nearly sorted already; this also sidesteps sort.Slice's closure
	// allocation on a snapshot path that may run once a second.
	for i := 1; i < len(units); i++ {
		for j := i; j > 0 && units[j].name < units[j-1].name; j-- {
			units[j], units[j-1] = units[j-1], units[j]
		}
	}
}

// writeHistogram emits the cumulative bucket series. A histogram whose name
// already carries labels (`x_ns{stage="rules"}`) folds the le label into the
// existing label set: `x_ns_bucket{stage="rules",le="250"}`.
func writeHistogram(w io.Writer, name string, h *Histogram) (int, error) {
	base, labels := splitLabels(name)
	var total int
	var cum int64
	counts := h.BucketCounts()
	bounds := h.bounds
	emit := func(le string, v int64) error {
		lbl := "le=\"" + le + "\""
		if labels != "" {
			lbl = labels + "," + lbl
		}
		n, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, lbl, v)
		total += n
		return err
	}
	for i, b := range bounds {
		cum += counts[i]
		if err := emit(strconv.FormatInt(b, 10), cum); err != nil {
			return total, err
		}
	}
	cum += counts[len(bounds)]
	if err := emit("+Inf", cum); err != nil {
		return total, err
	}
	n, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, wrapLabels(labels), h.Sum())
	total += n
	if err != nil {
		return total, err
	}
	n, err = fmt.Fprintf(w, "%s_count%s %d\n", base, wrapLabels(labels), cum)
	total += n
	return total, err
}

// splitLabels separates `base{a="b"}` into base and the inner label string.
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}
