// Package obs is the pipeline observability layer: a dependency-free,
// shard-safe metrics registry (atomic counters, gauges, fixed-bucket
// histograms) plus a lightweight per-packet trace-span API for the proxy
// pipeline stages.
//
// Design constraints, in priority order:
//
//  1. Determinism. FIAT's test suite uses metric snapshots as a correctness
//     oracle: a sharded run and a sequential run of the same seeded scenario
//     must encode byte-identical snapshots. Every metric is therefore either
//     a pure sum (counters, histogram bucket counts — addition commutes, so
//     per-shard accumulation order cannot show through) or a value derived
//     from deterministic pipeline state (gauges). Nothing in this package
//     reads the wall clock; durations are observed by the caller from
//     whatever simclock-style source it uses.
//  2. Shard safety. All mutation is a single atomic add/store; metrics can
//     be hammered from every engine shard with no locks on the hot path.
//     The registry lock is taken only on get-or-create and on snapshot.
//  3. No dependencies. The package imports only the standard library, so
//     every layer of the system (core, quicfast, netsim, chaos, cmds) can
//     take a *Registry without import cycles.
package obs

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is a programming error and is
// ignored so a miscomputed delta cannot make a counter run backwards).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. The zero value is not ready;
// use NewRegistry. A nil *Registry is a valid no-op sink: every getter
// returns a nil metric whose methods do nothing, so instrumented code never
// branches on "is observability on".
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Callers on a
// hot path should look the counter up once and keep the pointer.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use. Asking for an existing histogram returns it
// unchanged (the bounds argument is ignored then), so two subsystems sharing
// a registry must agree on bounds by construction.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Label renders a one-label metric name, `base{key="val"}`. The registry
// treats the result as an opaque name; the snapshot encoder keeps it intact,
// so the output stays grep- and Prometheus-compatible.
func Label(base, key, val string) string {
	return base + "{" + key + "=\"" + val + "\"}"
}

// names returns the sorted names of one metric kind; the caller holds r.mu.
func sortedKeys[M any](m map[string]M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PublishExpvar publishes the registry under the given expvar name as a
// rendered map of every metric to its current value. Publishing the same
// name twice is a no-op (expvar itself would panic).
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Values() }))
}

// Values returns every scalar metric as a name→value map (histograms
// contribute their _count and _sum). It is the expvar representation;
// Snapshot is the deterministic text one.
func (r *Registry) Values() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		out[n+"_count"] = h.Count()
		out[n+"_sum"] = h.Sum()
	}
	return out
}
