package obs

import (
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter("c_total") != c {
		t.Fatal("get-or-create returned a different counter")
	}

	g := reg.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilRegistryAndMetricsAreNoops(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(3)
	reg.Histogram("z", []int64{1}).Observe(5)
	if s := reg.Snapshot(); s != "" {
		t.Fatalf("nil registry snapshot = %q", s)
	}
	if v := reg.Values(); v != nil {
		t.Fatalf("nil registry values = %v", v)
	}
	reg.PublishExpvar("nil-reg")
	var tr *Tracer
	sp := tr.Begin(StageRules)
	sp.Enter(StageVerdict)
	sp.End()
}

func TestSnapshotDeterministicAcrossInsertionOrder(t *testing.T) {
	a := NewRegistry()
	a.Counter("m_b_total").Add(2)
	a.Gauge("m_a").Set(1)
	a.Histogram("m_c_ns", []int64{10, 100}).Observe(7)

	b := NewRegistry()
	b.Histogram("m_c_ns", []int64{10, 100}).Observe(7)
	b.Gauge("m_a").Set(1)
	b.Counter("m_b_total").Add(2)

	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a.Snapshot(), b.Snapshot())
	}
	want := "m_a 1\nm_b_total 2\n" +
		"m_c_ns_bucket{le=\"10\"} 1\nm_c_ns_bucket{le=\"100\"} 1\nm_c_ns_bucket{le=\"+Inf\"} 1\n" +
		"m_c_ns_sum 7\nm_c_ns_count 1\n"
	if got := a.Snapshot(); got != want {
		t.Fatalf("snapshot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotLabeledHistogramFoldsLe(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram(Label("p_stage_ns", "stage", "rules"), []int64{5}).Observe(3)
	snap := reg.Snapshot()
	for _, want := range []string{
		"p_stage_ns_bucket{stage=\"rules\",le=\"5\"} 1\n",
		"p_stage_ns_bucket{stage=\"rules\",le=\"+Inf\"} 1\n",
		"p_stage_ns_sum{stage=\"rules\"} 3\n",
		"p_stage_ns_count{stage=\"rules\"} 1\n",
	} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
}

func TestLabel(t *testing.T) {
	if got := Label("x_total", "reason", "rule-hit"); got != "x_total{reason=\"rule-hit\"}" {
		t.Fatalf("Label = %q", got)
	}
}

func TestValuesAndExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("v_total").Add(3)
	reg.Gauge("v_gauge").Set(-2)
	reg.Histogram("v_ns", []int64{10}).Observe(4)
	v := reg.Values()
	if v["v_total"] != 3 || v["v_gauge"] != -2 || v["v_ns_count"] != 1 || v["v_ns_sum"] != 4 {
		t.Fatalf("values = %v", v)
	}

	reg.PublishExpvar("obs-test-registry")
	reg.PublishExpvar("obs-test-registry") // second publish must not panic
	ev := expvar.Get("obs-test-registry")
	if ev == nil {
		t.Fatal("expvar not published")
	}
	if s := ev.String(); !strings.Contains(s, "\"v_total\":3") {
		t.Fatalf("expvar rendering = %s", s)
	}
}

func TestConcurrentCountersUnderRace(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("race_total")
			g := reg.Gauge("race_gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("race_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("race_gauge").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
}
