package adversary

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"sort"

	"fiat/internal/stats"
)

// Score is one attack's row in the detection/false-admission matrix. All
// counts are attributed at the scoring layer (source MAC for frames,
// payload tag for attestations) — the proxy itself never sees attribution.
type Score struct {
	Attack    string `json:"attack"`
	Mechanism string `json:"mechanism"`
	Cell      string `json:"cell"`

	// Frame verdicts through the gateway inspector.
	AttackerPackets  int `json:"attacker_packets"`
	AttackerAdmitted int `json:"attacker_admitted"` // false admissions
	AttackerBlocked  int `json:"attacker_blocked"`
	BenignPackets    int `json:"benign_packets"`
	BenignBlocked    int `json:"benign_blocked"` // collateral damage

	// Forged attestation dispositions at the attestation endpoint.
	AttestForged   int `json:"attest_forged"`
	AttestAccepted int `json:"attest_accepted"`
	AttestRejected int `json:"attest_rejected"`
	AttestStale    int `json:"attest_stale"`
	AttestReplayed int `json:"attest_replayed"`

	// Lockouts is how many devices ended the run disconnected.
	Lockouts int `json:"lockouts"`
	// TimeToDetectMs is the delay from the attack's first action to the
	// first blocked attacker packet or rejected forgery; -1 = undetected.
	TimeToDetectMs int64 `json:"time_to_detect_ms"`
}

// Matrix is the full corpus scored under one seed and shard width.
type Matrix struct {
	Seed    int64   `json:"seed"`
	Shards  int     `json:"shards"`
	Attacks []Score `json:"attacks"`
}

// RunAll executes the whole catalog and assembles the matrix, returning the
// per-attack results for deeper inspection. Rows are sorted by attack name,
// so the JSON is byte-stable.
func RunAll(seed int64, shards int) (*Matrix, map[string]*Result, error) {
	m := &Matrix{Seed: seed, Shards: shards}
	results := make(map[string]*Result)
	for _, a := range Catalog() {
		res, err := Run(Scenario{Attack: a, Seed: seed, Shards: shards})
		if err != nil {
			return nil, nil, fmt.Errorf("adversary: %s: %w", a.Spec().Name, err)
		}
		m.Attacks = append(m.Attacks, res.Score)
		results[a.Spec().Name] = res
	}
	sort.Slice(m.Attacks, func(i, j int) bool { return m.Attacks[i].Attack < m.Attacks[j].Attack })
	return m, results, nil
}

// JSON renders the matrix in its canonical byte-stable form (the baseline
// file format).
func (m *Matrix) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Table renders the matrix as the -attacks text report.
func (m *Matrix) Table() string {
	tb := &stats.Table{Header: []string{
		"Attack", "Pkts", "Admit", "Block", "Benign blk",
		"Forged", "Accept", "Reject", "Lockouts", "Detect",
	}}
	for _, s := range m.Attacks {
		detect := "never"
		if s.TimeToDetectMs >= 0 {
			detect = fmt.Sprintf("%dms", s.TimeToDetectMs)
		}
		tb.Add(s.Attack, s.AttackerPackets, s.AttackerAdmitted, s.AttackerBlocked,
			s.BenignBlocked, s.AttestForged, s.AttestAccepted, s.AttestRejected,
			s.Lockouts, detect)
	}
	return tb.String()
}

// baselineJSON is the committed expected matrix (seed 1, 1 shard) — the CI
// regression gate. Regenerate with:
//
//	go run ./cmd/fiat-analyze -attacks -attacks-write-baseline internal/adversary/baseline.json
//
//go:embed baseline.json
var baselineJSON []byte

// Baseline parses the committed expected matrix.
func Baseline() (*Matrix, error) {
	var m Matrix
	if err := json.Unmarshal(baselineJSON, &m); err != nil {
		return nil, fmt.Errorf("adversary: baseline.json: %w", err)
	}
	return &m, nil
}

// Compare checks cur against base with match-or-beat semantics and returns
// one line per regression (empty = gate passes). A row regresses when the
// authenticator admits more attacker traffic, accepts more forgeries, locks
// out less, detects slower, or blocks more benign traffic than the
// baseline recorded. Improvements do not fail the gate — they show up as a
// baseline diff to commit deliberately.
func Compare(cur, base *Matrix) []string {
	var regressions []string
	byName := make(map[string]Score, len(cur.Attacks))
	for _, s := range cur.Attacks {
		byName[s.Attack] = s
	}
	for _, want := range base.Attacks {
		got, ok := byName[want.Attack]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: attack missing from matrix", want.Attack))
			continue
		}
		if got.AttackerAdmitted > want.AttackerAdmitted {
			regressions = append(regressions, fmt.Sprintf("%s: attacker packets admitted %d > baseline %d",
				want.Attack, got.AttackerAdmitted, want.AttackerAdmitted))
		}
		if got.AttestAccepted > want.AttestAccepted {
			regressions = append(regressions, fmt.Sprintf("%s: forged attestations accepted %d > baseline %d",
				want.Attack, got.AttestAccepted, want.AttestAccepted))
		}
		if want.Lockouts > 0 && got.Lockouts < want.Lockouts {
			regressions = append(regressions, fmt.Sprintf("%s: lockouts %d < baseline %d",
				want.Attack, got.Lockouts, want.Lockouts))
		}
		if want.TimeToDetectMs >= 0 && (got.TimeToDetectMs < 0 || got.TimeToDetectMs > want.TimeToDetectMs) {
			regressions = append(regressions, fmt.Sprintf("%s: time-to-detect %dms regressed past baseline %dms",
				want.Attack, got.TimeToDetectMs, want.TimeToDetectMs))
		}
		if got.BenignBlocked > want.BenignBlocked {
			regressions = append(regressions, fmt.Sprintf("%s: benign packets blocked %d > baseline %d",
				want.Attack, got.BenignBlocked, want.BenignBlocked))
		}
	}
	return regressions
}
