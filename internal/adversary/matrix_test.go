package adversary

import (
	"bytes"
	"testing"
)

// TestMatrixDeterministicAcrossShards is the corpus's determinism oracle:
// for every attack, the sharded engine and the sequential reference produce
// byte-identical decision traces, audit logs, scores, and obs snapshots,
// and the assembled matrix JSON is byte-identical. The matrix is therefore
// a function of the seed alone — the property the baseline gate rests on.
func TestMatrixDeterministicAcrossShards(t *testing.T) {
	seq, seqRes, err := RunAll(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh, shRes, err := RunAll(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range seqRes {
		b := shRes[name]
		if b == nil {
			t.Fatalf("%s: missing sharded result", name)
		}
		if a.DecisionTrace() != b.DecisionTrace() {
			t.Errorf("%s: decision trace differs between 1 and 4 shards", name)
		}
		if a.Metrics != b.Metrics {
			t.Errorf("%s: obs snapshot differs between 1 and 4 shards", name)
		}
		if a.Score != b.Score {
			t.Errorf("%s: score differs: seq %+v sharded %+v", name, a.Score, b.Score)
		}
	}
	seqJSON, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Shard width is part of the matrix header but must not touch any row.
	sh.Shards = 1
	shJSON, err := sh.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, shJSON) {
		t.Fatalf("matrix JSON differs across shard widths:\n%s\n--- vs ---\n%s", seqJSON, shJSON)
	}
}

// TestMatrixDeterministicReplay: a fixed-seed rerun reproduces every byte.
func TestMatrixDeterministicReplay(t *testing.T) {
	for _, a := range Catalog() {
		r1, err := Run(Scenario{Attack: a})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(Scenario{Attack: a})
		if err != nil {
			t.Fatal(err)
		}
		name := a.Spec().Name
		if r1.DecisionTrace() != r2.DecisionTrace() {
			t.Errorf("%s: decision trace not replay-stable", name)
		}
		if r1.Metrics != r2.Metrics {
			t.Errorf("%s: obs snapshot not replay-stable", name)
		}
		if r1.Score != r2.Score {
			t.Errorf("%s: score not replay-stable: %+v vs %+v", name, r1.Score, r2.Score)
		}
	}
}

// TestBaselineGate is the committed regression gate: the default matrix must
// match the embedded baseline.json exactly — not just pass Compare. A
// legitimate behavior change regenerates the baseline (fiat-analyze
// -attacks -attacks-write-baseline) and commits the diff for review.
func TestBaselineGate(t *testing.T) {
	base, err := Baseline()
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := RunAll(base.Seed, base.Shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range Compare(cur, base) {
		t.Errorf("regression: %s", reg)
	}
	curJSON, err := cur.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(curJSON, baselineJSON) {
		t.Errorf("matrix drifted from committed baseline.json; regenerate with\n  go run ./cmd/fiat-analyze -attacks -attacks-write-baseline internal/adversary/baseline.json\nand commit the diff:\n%s", curJSON)
	}
}

// TestCompareSemantics exercises the gate logic itself on synthetic rows.
func TestCompareSemantics(t *testing.T) {
	base := &Matrix{Attacks: []Score{{
		Attack: "x", AttackerAdmitted: 2, AttestAccepted: 1,
		Lockouts: 1, TimeToDetectMs: 100, BenignBlocked: 0,
	}}}
	ok := &Matrix{Attacks: []Score{{
		Attack: "x", AttackerAdmitted: 1, AttestAccepted: 0,
		Lockouts: 2, TimeToDetectMs: 50, BenignBlocked: 0,
	}}}
	if regs := Compare(ok, base); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
	bad := &Matrix{Attacks: []Score{{
		Attack: "x", AttackerAdmitted: 3, AttestAccepted: 2,
		Lockouts: 0, TimeToDetectMs: -1, BenignBlocked: 4,
	}}}
	if regs := Compare(bad, base); len(regs) != 5 {
		t.Fatalf("want 5 regressions, got %d: %v", len(regs), regs)
	}
	missing := &Matrix{}
	if regs := Compare(missing, base); len(regs) != 1 {
		t.Fatalf("missing attack not flagged: %v", regs)
	}
}
