package adversary

import (
	"strings"
	"testing"

	"fiat/internal/core"
)

// runAttack executes one named catalog attack with default scenario
// parameters.
func runAttack(t *testing.T, name string, shards int) *Result {
	t.Helper()
	for _, a := range Catalog() {
		if a.Spec().Name != name {
			continue
		}
		res, err := Run(Scenario{Attack: a, Shards: shards})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res
	}
	t.Fatalf("attack %q not in catalog", name)
	return nil
}

func TestCatalogSpecsComplete(t *testing.T) {
	if len(Catalog()) < 6 {
		t.Fatalf("catalog has %d attacks, want >= 6", len(Catalog()))
	}
	seen := map[string]bool{}
	for _, a := range Catalog() {
		spec := a.Spec()
		if spec.Name == "" || spec.Mechanism == "" || spec.Cell == "" || spec.Description == "" {
			t.Errorf("attack %+v: incomplete spec", spec)
		}
		if seen[spec.Name] {
			t.Errorf("duplicate attack name %q", spec.Name)
		}
		seen[spec.Name] = true
	}
}

// TestMimicryPeriodRidesLearnedRules pins the mimicry bypass: every attacker
// packet continuing the dormant flow at its learned period is admitted, no
// lockout fires, and the attack is never detected.
func TestMimicryPeriodRidesLearnedRules(t *testing.T) {
	res := runAttack(t, "mimicry-period", 1)
	s := res.Score
	if s.AttackerPackets == 0 || s.AttackerBlocked != 0 || s.AttackerAdmitted != s.AttackerPackets {
		t.Fatalf("score = %+v, want all attacker packets admitted", s)
	}
	if s.Lockouts != 0 || s.TimeToDetectMs != -1 {
		t.Fatalf("score = %+v, want undetected", s)
	}
	if !strings.Contains(res.DecisionTrace(), string(core.ReasonRuleHit)+" atk") {
		t.Fatalf("no attacker rule-hit in trace:\n%s", res.DecisionTrace())
	}
}

// TestMimicryOffPeriodLandsNonManual pins the non-manual free pass: the
// off-period replay misses the rules but classifies non-manual and sails
// through without a humanness check.
func TestMimicryOffPeriodLandsNonManual(t *testing.T) {
	res := runAttack(t, "mimicry-offperiod", 1)
	s := res.Score
	if s.AttackerPackets != 10 || s.AttackerAdmitted != 10 {
		t.Fatalf("score = %+v, want 10/10 admitted", s)
	}
	if !strings.Contains(res.DecisionTrace(), string(core.ReasonNonManual)+" atk") {
		t.Fatalf("no attacker non-manual admission in trace")
	}
}

// TestCommandInjectLocksOut pins brute-force detection: unattested manual
// bursts drop past the grace head, the third drop locks the device, and
// detection is fast.
func TestCommandInjectLocksOut(t *testing.T) {
	res := runAttack(t, "command-inject", 1)
	s := res.Score
	if s.Lockouts != 1 || !res.Locked["plug"] {
		t.Fatalf("score = %+v locked=%v, want lockout", s, res.Locked)
	}
	if s.AttackerBlocked == 0 || s.TimeToDetectMs < 0 {
		t.Fatalf("score = %+v, want blocked packets and detection", s)
	}
	if s.AttackerAdmitted >= s.AttackerBlocked {
		t.Fatalf("score = %+v, want most attacker packets blocked (only grace heads admitted)", s)
	}
	// The post-lockout benign interaction is collateral damage.
	if s.BenignBlocked == 0 {
		t.Fatalf("score = %+v, want benign collateral after lockout", s)
	}
}

// TestAttestReplayRejected pins the anti-replay guard end-to-end: captured
// valid bytes re-delivered inside the window are rejected as replays, and no
// forged attestation opens the gate.
func TestAttestReplayRejected(t *testing.T) {
	res := runAttack(t, "attest-replay", 1)
	s := res.Score
	if s.AttestForged != 2 || s.AttestAccepted != 0 || s.AttestRejected != 2 {
		t.Fatalf("score = %+v, want 2 forged, all rejected", s)
	}
	if s.AttestReplayed != 2 || s.AttestStale != 0 {
		t.Fatalf("score = %+v, want replay cell, not stale", s)
	}
	if s.TimeToDetectMs < 0 {
		t.Fatalf("score = %+v, want detection", s)
	}
}

// TestAttestTimeShiftStale pins the freshness boundary end-to-end: the same
// captured bytes re-delivered past the window are stale, not replayed.
func TestAttestTimeShiftStale(t *testing.T) {
	res := runAttack(t, "attest-timeshift", 1)
	s := res.Score
	if s.AttestForged != 2 || s.AttestAccepted != 0 || s.AttestRejected != 2 {
		t.Fatalf("score = %+v, want 2 forged, all rejected", s)
	}
	if s.AttestStale != 2 || s.AttestReplayed != 0 {
		t.Fatalf("score = %+v, want stale cell, not replay", s)
	}
}

// TestMachineTouchRejectedByValidator pins the humanness model against
// on-phone malware: synthetic machine windows ship under the real pairing
// key and the model rejects them, so the paired commands drop.
func TestMachineTouchRejectedByValidator(t *testing.T) {
	res := runAttack(t, "machine-touch", 1)
	s := res.Score
	if s.AttestForged != 4 {
		t.Fatalf("score = %+v, want 4 forged attestations", s)
	}
	if s.AttestRejected < 3 {
		t.Fatalf("score = %+v, want the validator to reject most machine windows", s)
	}
	if s.AttackerBlocked == 0 || s.TimeToDetectMs < 0 {
		t.Fatalf("score = %+v, want blocked bursts and detection", s)
	}
}

// TestRobotArmBypassPinned pins the reproduced physical-tap bypass: the
// validator accepts robotic windows and the paired bursts are admitted as
// verified-human. This row records a real limitation — the test fails if
// the bypass silently narrows (improvement: update the baseline) or widens.
func TestRobotArmBypassPinned(t *testing.T) {
	res := runAttack(t, "robot-arm", 1)
	s := res.Score
	if s.AttestForged != 4 {
		t.Fatalf("score = %+v, want 4 forged attestations", s)
	}
	if s.AttestAccepted < 2 {
		t.Fatalf("score = %+v, want the tap-energy validator fooled by robotic taps", s)
	}
	if s.AttackerAdmitted <= s.AttackerBlocked {
		t.Fatalf("score = %+v, want most robotic bursts admitted as human", s)
	}
	if !strings.Contains(res.DecisionTrace(), string(core.ReasonHumanOK)+" atk") {
		t.Fatalf("no attacker human-ok admission in trace")
	}
}

// TestMultiUserPiggybackWindow pins the shared-TTL weakness: the burst
// inside the guest's validation window is admitted as human, the one
// outside drops.
func TestMultiUserPiggybackWindow(t *testing.T) {
	res := runAttack(t, "multiuser-piggyback", 1)
	s := res.Score
	if s.AttackerAdmitted == 0 || !strings.Contains(res.DecisionTrace(), string(core.ReasonHumanOK)+" atk") {
		t.Fatalf("score = %+v, want in-TTL piggyback admitted as human", s)
	}
	if s.AttackerBlocked == 0 || s.TimeToDetectMs < 0 {
		t.Fatalf("score = %+v, want the out-of-TTL control burst blocked", s)
	}
	if s.Lockouts != 0 {
		t.Fatalf("score = %+v, want no lockout (one drop only)", s)
	}
}

// TestRogueOnboardPartialDetection pins the churn-takeover boundary: the
// spoofed camera's in-period heartbeats ride the learned rules (admitted,
// even after lockout), while its novel bursts drop and lock the ghost out.
func TestRogueOnboardPartialDetection(t *testing.T) {
	res := runAttack(t, "rogue-onboard", 1)
	s := res.Score
	if !res.Locked["cam"] || res.Locked["plug"] {
		t.Fatalf("locked = %v, want cam locked, plug clean", res.Locked)
	}
	if s.AttackerAdmitted == 0 || s.AttackerBlocked == 0 {
		t.Fatalf("score = %+v, want mixed admissions (rule-riding) and blocks (novel bursts)", s)
	}
	if s.BenignBlocked != 0 {
		t.Fatalf("score = %+v, want the plug's benign traffic untouched", s)
	}
}
