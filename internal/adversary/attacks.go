package adversary

import (
	"time"

	"fiat/internal/flows"
)

// Catalog returns the full attack corpus, in matrix order. Every entry is
// deterministic in the scenario seed; RunAll scores each into one matrix
// row. The catalog deliberately mixes attacks FIAT stops (command
// injection, attestation replay and time-shift, machine-driven touch) with
// reproduced bypasses it does not (rule mimicry, robotic-arm taps, TTL
// piggybacking, churn takeover), so the baseline pins both boundaries of
// the authenticator.
func Catalog() []Attack {
	return []Attack{
		mimicryPeriod{},
		mimicryOffPeriod{},
		commandInject{},
		attestReplay{},
		attestTimeShift{},
		machineTouch{},
		robotArm{},
		multiUserPiggyback{},
		rogueOnboard{},
	}
}

// dormantRecord is the bootstrap-only periodic flow the mimicry attacks
// continue: the attacker observed its cadence on the wire and keeps emitting
// it with the victim's source IP after the real sender went silent.
func dormantRecord(now time.Time) flows.Record {
	return flows.Record{
		Time: now, Size: 96, Proto: "udp", Dir: flows.DirOutbound,
		RemoteIP: cloudIP, LocalPort: 41000, RemotePort: 8443,
		Category: flows.CategoryControl,
	}
}

// mimicryPeriod continues a learned periodic flow at exactly its learned
// period. Stage 1 admits every in-period packet as a predictable rule hit —
// the known mimicry boundary of rule-based authentication: once an IAT is
// learned, anyone who can spoof the source IP rides the rule.
type mimicryPeriod struct{}

func (mimicryPeriod) Spec() Spec {
	return Spec{
		Name:        "mimicry-period",
		Mechanism:   "learned periodic rules (stage 1 predictability)",
		Cell:        "attacker-admitted",
		Description: "Attacker continues a bootstrap-learned periodic flow at its exact period with a spoofed source IP; every packet is admitted as a rule hit.",
		DormantFlow: true,
	}
}

func (mimicryPeriod) Arm(w *World) {
	for off := 15 * time.Second; off < w.scn.Duration; off += 15 * time.Second {
		o := off
		w.AfterBoot(o, func(now time.Time) { w.SpoofDeviceFrame(devIP, dormantRecord(now)) })
	}
}

// mimicryOffPeriod replays the same flow off-period. The packets miss the
// rule but land in the non-manual event bucket, which FIAT admits by design
// (its gate is for manual commands) — the row pins that the non-manual
// lane is a free pass for machine-shaped traffic.
type mimicryOffPeriod struct{}

func (mimicryOffPeriod) Spec() Spec {
	return Spec{
		Name:        "mimicry-offperiod",
		Mechanism:   "manual/non-manual event classification (stage 3)",
		Cell:        "attacker-admitted",
		Description: "Attacker replays the learned flow at the wrong period; the misses classify as non-manual events and are admitted without any humanness check.",
		DormantFlow: true,
	}
}

func (mimicryOffPeriod) Arm(w *World) {
	// Start well clear of the victim's +15 s interaction: the event grouper
	// works on a 5 s gap, and a train butted against the benign manual event
	// would ride its verdict instead of being classified itself.
	for i := 0; i < 10; i++ {
		off := 30*time.Second + time.Duration(i)*3*time.Second
		w.AfterBoot(off, func(now time.Time) { w.SpoofDeviceFrame(devIP, dormantRecord(now)) })
	}
}

// commandInject forges the §4 manual-command signature (cloud→device burst
// headed by the notification size) with no attestation at all. The humanness
// gate drops each event past the grace head, and the third drop inside the
// lockout window disconnects the device — FIAT's brute-force detection,
// with the grace-head packets as the measured cost.
type commandInject struct{}

func (commandInject) Spec() Spec {
	return Spec{
		Name:        "command-inject",
		Mechanism:   "humanness gate + brute-force lockout (stage 4)",
		Cell:        "lockouts",
		Description: "Attacker injects manual-shaped command bursts with no attestation; events drop past the grace head and the third drop locks the device out.",
	}
}

func (commandInject) Arm(w *World) {
	for _, off := range []time.Duration{30 * time.Second, 45 * time.Second, 58 * time.Second, 90 * time.Second} {
		w.CommandBurst(off, devIP, 235, 134)
	}
}

// attestReplay captures the victim's legitimate attestation off the wire and
// re-delivers the exact bytes alongside forged commands. The MAC verifies —
// the attacker holds a valid transcript — but the replay guard's byte-exact
// dedup rejects it, and the commands drop unattested.
type attestReplay struct{}

func (attestReplay) Spec() Spec {
	return Spec{
		Name:        "attest-replay",
		Mechanism:   "attestation anti-replay (byte-exact dedup)",
		Cell:        "attest-replayed",
		Description: "Attacker replays a captured valid attestation inside the freshness window; the dedup tag rejects it and the paired command bursts drop.",
	}
}

func (attestReplay) Arm(w *World) {
	for _, off := range []time.Duration{30 * time.Second, 45 * time.Second} {
		o := off
		w.AfterBoot(o, func(time.Time) {
			if len(w.BenignAttests) > 0 {
				w.ShipAttackerAttest(w.BenignAttests[0], false)
			}
		})
		w.CommandBurst(o+500*time.Millisecond, devIP, 235, 134)
	}
}

// attestTimeShift re-delivers the captured attestation outside the freshness
// window — the time-shifted variant. The guard's exclusive boundary marks it
// stale regardless of the valid MAC.
type attestTimeShift struct{}

func (attestTimeShift) Spec() Spec {
	return Spec{
		Name:        "attest-timeshift",
		Mechanism:   "attestation freshness window (exclusive boundary)",
		Cell:        "attest-stale",
		Description: "Attacker re-delivers a captured attestation after the freshness window; the claimed interaction time marks it stale and the paired bursts drop.",
	}
}

func (attestTimeShift) Arm(w *World) {
	for _, off := range []time.Duration{50 * time.Second, 61500 * time.Millisecond} {
		o := off
		w.AfterBoot(o, func(time.Time) {
			if len(w.BenignAttests) > 0 {
				w.ShipAttackerAttest(w.BenignAttests[0], false)
			}
		})
		w.CommandBurst(o+500*time.Millisecond, devIP, 235, 134)
	}
}

// machineTouch is on-phone malware: it holds the real pairing key and ships
// fresh, well-formed attestations — but the sensor windows are synthetic
// machine input with no human micro-tremor. The humanness model is the only
// line left, and it rejects the windows; the paired commands then drop and
// lock the device.
type machineTouch struct{}

func (machineTouch) Spec() Spec {
	return Spec{
		Name:        "machine-touch",
		Mechanism:   "humanness validator (sensor-feature model)",
		Cell:        "attest-rejected",
		Description: "Phone malware attests with synthetic machine-input sensor windows under the real pairing key; the humanness model rejects them and the commands drop.",
	}
}

func (machineTouch) Arm(w *World) {
	for _, off := range []time.Duration{29 * time.Second, 41 * time.Second, 53 * time.Second, 65 * time.Second} {
		o := off
		win := w.AtkGen.NonHuman()
		w.AfterBoot(o, func(time.Time) {
			payload, err := w.App.Attest("com.plug.app", win)
			if err != nil {
				return
			}
			w.ShipAttackerAttest(payload, true)
		})
		w.CommandBurst(o+time.Second, devIP, 235, 134)
	}
}

// robotArm drives the phone with a physical actuator: real taps, real
// impulse energy, no human hand behind them. The tap-energy-keyed validator
// accepts most robotic windows — the reproduced "Perils of Zero-Interaction
// Security" bypass — and the paired commands ride in as verified-human.
// The row pins the bypass honestly; shrinking it shows up as a baseline
// improvement, not a silent pass.
type robotArm struct{}

func (robotArm) Spec() Spec {
	return Spec{
		Name:        "robot-arm",
		Mechanism:   "humanness validator (tap-energy blind spot)",
		Cell:        "attacker-admitted",
		Description: "A robotic arm taps the real phone; the validator keys on tap impulse energy and accepts the windows, admitting the paired command bursts as human.",
	}
}

func (robotArm) Arm(w *World) {
	for _, off := range []time.Duration{29 * time.Second, 41 * time.Second, 53 * time.Second, 65 * time.Second} {
		o := off
		win := w.AtkGen.Robotic()
		w.AfterBoot(o, func(time.Time) {
			payload, err := w.App.Attest("com.plug.app", win)
			if err != nil {
				return
			}
			w.ShipAttackerAttest(payload, true)
		})
		w.CommandBurst(o+time.Second, devIP, 235, 134)
	}
}

// multiUserPiggyback is the Discussion's piggybacking window in a multi-user
// home: a guest phone (enrolled under its own pairing alias) attests a
// legitimate interaction, and the attacker slips a command burst into the
// ValidationTTL that interaction opened. The in-window burst is admitted as
// verified-human; a control burst outside the window drops.
type multiUserPiggyback struct{}

func (multiUserPiggyback) Spec() Spec {
	return Spec{
		Name:        "multiuser-piggyback",
		Mechanism:   "validation TTL shared across users (phone hand-off)",
		Cell:        "attacker-admitted",
		Description: "A guest phone's legitimate attestation opens the validation TTL; the attacker's burst inside the window is admitted as human, the one outside drops.",
		GuestPhone:  true,
	}
}

func (multiUserPiggyback) Arm(w *World) {
	guestWin := w.HumanWindow()
	// The guest's own legitimate interaction: attestation at +30 s, command
	// burst ~1 s later (benign — it is a real user).
	w.AfterBoot(30*time.Second, func(time.Time) {
		payload, err := w.GuestApp.Attest("com.plug.app", guestWin)
		if err != nil {
			return
		}
		w.ShipGuestAttest(payload)
	})
	for j, lag := range []time.Duration{time.Second, 1100 * time.Millisecond, 1200 * time.Millisecond} {
		size := 235
		if j > 0 {
			size = 134
		}
		sz := size
		w.AfterBoot(30*time.Second+lag, func(time.Time) { w.SendBenignCommand(sz) })
	}
	// The attack: one burst inside the TTL the guest opened, one outside.
	w.CommandBurst(37*time.Second, devIP, 235, 134)
	w.CommandBurst(70*time.Second, devIP, 235, 134)
}

// rogueOnboard exploits device churn: the camera leaves the home, and the
// attacker onboards a spoofed replacement claiming its IP and traffic
// shape. In-period heartbeats ride the camera's learned rules; the novel
// command bursts drop unattested and lock the ghost device out — but the
// rule-riding admissions persist even after lockout, which the row pins.
type rogueOnboard struct{}

func (rogueOnboard) Spec() Spec {
	return Spec{
		Name:         "rogue-onboard",
		Mechanism:    "per-device identity under churn (IP takeover)",
		Cell:         "lockouts",
		Description:  "After the camera churns away, the attacker claims its IP: in-period heartbeats are admitted by the learned rules, novel bursts drop and trigger lockout.",
		SecondDevice: true,
	}
}

func (rogueOnboard) Arm(w *World) {
	// In-period heartbeats continuing the camera's 12 s cadence.
	for off := 40 * time.Second; off < w.scn.Duration; off += 12 * time.Second {
		o := off
		w.AfterBoot(o, func(now time.Time) {
			w.SpoofDeviceFrame(camIP, flows.Record{
				Time: now, Size: 180, Proto: "tcp", Dir: flows.DirOutbound,
				RemoteIP: cloudIP, LocalPort: 41000, RemotePort: 8883,
				Category: flows.CategoryControl,
			})
		})
	}
	// Novel command bursts against the ghost camera.
	for _, off := range []time.Duration{45 * time.Second, 57 * time.Second, 69 * time.Second} {
		w.CommandBurst(off, camIP, 300, 150)
	}
}
