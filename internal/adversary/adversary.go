// Package adversary is the attack-side mirror of internal/chaos: a seeded
// catalog of adversarial scenarios replayed end-to-end against the full
// proxy — gateway inspection, rule matching, event grouping, manual
// classification, the humanness gate, anti-replay, and lockout — on a
// virtual clock. Where chaos asks "does FIAT degrade gracefully under
// network weather?", adversary asks "what does FIAT actually stop?".
//
// Each attack in the catalog targets one FIAT mechanism (learned periodic
// rules, the attestation channel, the humanness validator, the multi-phone
// pairing set, device churn) and is scored into a detection/false-admission
// matrix: attacker packets admitted as authentic vs blocked, forged
// attestations accepted vs rejected, lockouts triggered, time to first
// detection, and benign collateral. The matrix is deterministic in the
// scenario seed — byte-identical across replays and shard counts — so a
// committed baseline (baseline.json) turns the whole corpus into a CI
// regression gate: any change that admits more attacker traffic, accepts
// more forged attestations, or slows detection fails the build.
//
// The scores pin honest outcomes, not aspirations: rows like
// traffic-mimicry and robot-arm record reproduced bypasses (mimicked
// periodic rules are admitted; robotic taps fool the tap-energy validator,
// the "Perils of Zero-Interaction Security" result), so a regression is
// "the bypass got wider", and an improvement shows up as a baseline diff.
package adversary

import (
	"bytes"
	"fmt"
	mrand "math/rand"
	"net/netip"
	"strings"
	"sync"
	"time"

	"fiat/internal/core"
	"fiat/internal/devices"
	"fiat/internal/flows"
	"fiat/internal/keystore"
	"fiat/internal/netsim"
	"fiat/internal/obs"
	"fiat/internal/packet"
	"fiat/internal/sensors"
	"fiat/internal/simclock"
)

// Spec declares an attack's identity and the world features it needs.
type Spec struct {
	// Name keys the attack in the matrix and baseline.
	Name string
	// Mechanism names the FIAT mechanism the attack targets.
	Mechanism string
	// Cell names the matrix cell expected to reflect the outcome — a
	// detection cell ("lockouts", "attest-rejected") for stopped attacks, an
	// admission cell ("attacker-admitted") for pinned bypasses.
	Cell string
	// Description is one sentence for DESIGN.md and -attacks output.
	Description string

	// GuestPhone enrolls a second phone via an alias pairing (multi-user
	// home); the attack reaches it through World.GuestApp.
	GuestPhone bool
	// SecondDevice registers a second device ("cam") that churns away
	// mid-run, for takeover scenarios.
	SecondDevice bool
	// DormantFlow makes the victim device emit an extra periodic flow during
	// bootstrap only, leaving a learned rule with no living owner for the
	// attacker to continue.
	DormantFlow bool
	// NoBenignManual suppresses the victim's benign manual interactions
	// (for rows where accidental piggybacking would blur attribution).
	NoBenignManual bool
}

// Attack is one catalog entry: a declaration plus an Arm hook that schedules
// the attacker's traffic on the world before the clock runs.
type Attack interface {
	Spec() Spec
	Arm(w *World)
}

// Scenario configures one adversarial run.
type Scenario struct {
	Attack Attack
	// Seed drives every random stream (default 1).
	Seed int64
	// Shards selects the proxy engine width (default 1).
	Shards int
	// Bootstrap is the learning window (default 2 minutes).
	Bootstrap time.Duration
	// Duration is the post-bootstrap phase (default 2 minutes).
	Duration time.Duration
	// AttestWindow is the anti-replay window (default 30 s).
	AttestWindow time.Duration
}

func (s *Scenario) defaults() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards <= 0 {
		s.Shards = 1
	}
	if s.Bootstrap <= 0 {
		s.Bootstrap = 2 * time.Minute
	}
	if s.Duration <= 0 {
		s.Duration = 2 * time.Minute
	}
	if s.AttestWindow <= 0 {
		s.AttestWindow = 30 * time.Second
	}
}

// Result is everything one run exposes for scoring and invariant checks.
type Result struct {
	Score Score
	// Decisions is the rendered decision stream in gateway order; attacker
	// frames carry an " atk" marker. Byte-comparable across replays and
	// shard counts.
	Decisions []string
	Log       []core.LogEntry
	Stats     core.ProxyStats
	// Metrics is the shared obs registry snapshot at run end.
	Metrics string
	// Locked is the per-device lockout state at run end.
	Locked map[string]bool
}

// DecisionTrace renders the decision stream for byte-exact comparison.
func (r *Result) DecisionTrace() string { return strings.Join(r.Decisions, "\n") }

// The humanness validator trains once per process (it fits a model); every
// run forks its own seeded window generators so draws replay.
var (
	valOnce sync.Once
	valInst *sensors.Validator
	valErr  error
)

func sharedValidator() (*sensors.Validator, error) {
	valOnce.Do(func() {
		valInst, _, valErr = sensors.DefaultValidator(1)
	})
	return valInst, valErr
}

// GuestAlias is the proxy-side pairing alias of the second enrolled phone.
const GuestAlias = "fiat-pairing-guest"

// Fixed topology: the chaos smart home plus a camera, a guest phone, and the
// attacker's own NIC. The attacker spoofs IPs freely but its frames keep its
// real source MAC until the gateway rewrites them at forward time — which is
// after inspection, so the scorer attributes packets by origin while the
// proxy only ever sees what a real deployment would.
var (
	gwMAC    = packet.MAC{2, 0, 0, 0, 0, 0x01}
	devMAC   = packet.MAC{2, 0, 0, 0, 0, 0x50}
	camMAC   = packet.MAC{2, 0, 0, 0, 0, 0x51}
	cloudMAC = packet.MAC{2, 0, 0, 0, 1, 0x01}
	phoneMAC = packet.MAC{2, 0, 0, 0, 0, 0x77}
	guestMAC = packet.MAC{2, 0, 0, 0, 0, 0x78}
	attMAC   = packet.MAC{2, 0, 0, 0, 0, 0x03}
	atkMAC   = packet.MAC{2, 0, 0, 0, 0, 0xEE}

	gwIP    = netip.MustParseAddr("192.168.1.1")
	devIP   = netip.MustParseAddr("192.168.1.50")
	camIP   = netip.MustParseAddr("192.168.1.51")
	attIP   = netip.MustParseAddr("192.168.1.3")
	atkIP   = netip.MustParseAddr("192.168.1.66")
	cloudIP = netip.MustParseAddr("52.1.1.1")
	phoneIP = netip.MustParseAddr("10.99.0.2")
	guestIP = netip.MustParseAddr("10.99.0.3")
)

// World is the armed scenario an Attack schedules against. All fields are
// wired before Arm runs; the clock has not started.
type World struct {
	Clock *simclock.VirtualClock
	Net   *netsim.Network
	Proxy *core.Proxy
	// App is the victim's phone (the real pairing key — reachable by
	// on-phone malware attacks). GuestApp is non-nil iff Spec.GuestPhone.
	App      *core.ClientApp
	GuestApp *core.ClientApp
	// AtkGen generates the attacker's sensor windows (its own RNG fork, so
	// attack draws never perturb the victim's streams).
	AtkGen *sensors.Generator
	// BenignAttests collects the victim phone's shipped attestation payloads
	// in ship order — the attacker's capture vantage (nw.Tap in spirit).
	BenignAttests [][]byte
	// BootEnd / RunEnd frame the enforcement phase.
	BootEnd, RunEnd time.Time

	scn       Scenario
	spec      Spec
	res       *Result
	epoch     time.Time
	validator *sensors.Validator
	benignGen *sensors.Generator

	attackerTags map[[32]byte]bool
	atkFramers   map[netip.Addr]*devices.Framer
	atkBuilder   packet.Builder
	guestBuilder packet.Builder
	benignFramer *devices.Framer

	attackStarted bool
	attackStart   time.Time
	detected      bool
	detectAt      time.Time

	deviceList []deviceEntry
}

type deviceEntry struct {
	name string
	ip   netip.Addr
}

// AfterBoot schedules fn at off past the end of the bootstrap window.
func (w *World) AfterBoot(off time.Duration, fn func(now time.Time)) {
	w.Clock.AfterFunc(w.scn.Bootstrap+off, fn)
}

// HumanWindow draws a validator-screened human sensor window from the
// benign stream (the same pre-screening the chaos runner applies, so rows
// measure the gate, not validator recall).
func (w *World) HumanWindow() sensors.Window {
	win := w.benignGen.Human()
	for try := 0; try < 20 && !w.validator.ValidateWindow(win); try++ {
		win = w.benignGen.Human()
	}
	return win
}

// markAttack stamps the attack's first action for time-to-detection.
func (w *World) markAttack(now time.Time) {
	if !w.attackStarted {
		w.attackStarted = true
		w.attackStart = now
	}
}

func (w *World) noteDetection(now time.Time) {
	if !w.detected {
		w.detected = true
		w.detectAt = now
	}
}

// SpoofDeviceFrame sends one attacker frame that impersonates the device at
// spoofIP talking outbound (source IP spoofed, source MAC the attacker's).
func (w *World) SpoofDeviceFrame(spoofIP netip.Addr, rec flows.Record) {
	w.markAttack(w.Clock.Now())
	w.Net.SendFrame(w.spoofFramer(spoofIP).Frame(rec))
}

// spoofFramer returns (building lazily) the attacker's framer for one
// impersonated device IP, cached so per-flow TCP sequence state persists
// across injections like a real takeover would.
func (w *World) spoofFramer(ip netip.Addr) *devices.Framer {
	fr, ok := w.atkFramers[ip]
	if !ok {
		fr = devices.NewFramer(ip, atkMAC, gwMAC)
		w.atkFramers[ip] = fr
	}
	return fr
}

// InjectCommand sends one attacker frame that impersonates the vendor cloud
// commanding the device at dstIP: addressed to the gateway at L2 (source MAC
// the attacker's), cloud→device at L3 — the §4 command signature when size
// matches the device's notification length.
func (w *World) InjectCommand(dstIP netip.Addr, size int) {
	now := w.Clock.Now()
	w.markAttack(now)
	f := w.spoofFramer(dstIP).Frame(flows.Record{
		Time: now, Size: size, Proto: "tcp", Dir: flows.DirInbound,
		RemoteIP: cloudIP, LocalPort: 40000, RemotePort: 443,
		TCPFlags: 0x18, TLSVersion: 0x0303, Category: flows.CategoryManual,
	})
	copy(f[0:6], gwMAC[:])
	copy(f[6:12], atkMAC[:])
	w.Net.SendFrame(f)
}

// CommandBurst schedules a three-packet command burst (head at the device's
// notification size, two follow-ups) starting at off past bootstrap.
func (w *World) CommandBurst(off time.Duration, dstIP netip.Addr, headSize, tailSize int) {
	for i, lag := range []time.Duration{0, 100 * time.Millisecond, 200 * time.Millisecond} {
		size := headSize
		if i > 0 {
			size = tailSize
		}
		sz := size
		w.AfterBoot(off+lag, func(time.Time) { w.InjectCommand(dstIP, sz) })
	}
}

// ShipAttackerAttest delivers an attestation payload to the proxy's
// attestation endpoint as the attacker: the payload's tag is registered for
// attribution, and the frame originates from the attacker's NIC (or the
// victim's phone when fromPhone — on-phone malware ships over the victim's
// own radio).
func (w *World) ShipAttackerAttest(payload []byte, fromPhone bool) {
	if len(payload) >= 32 {
		var tag [32]byte
		copy(tag[:], payload[len(payload)-32:])
		w.attackerTags[tag] = true
	}
	w.markAttack(w.Clock.Now())
	srcMAC, srcIP := atkMAC, atkIP
	if fromPhone {
		srcMAC, srcIP = phoneMAC, phoneIP
	}
	w.Net.SendFrame(w.atkBuilder.UDPPacket(packet.UDPSpec{
		SrcMAC: srcMAC, DstMAC: attMAC, SrcIP: srcIP, DstIP: attIP,
		SrcPort: 7843, DstPort: 7844, Payload: payload,
	}))
}

// ShipGuestAttest delivers the guest phone's attestation with benign
// attribution — the guest is a real housemate, not the attacker.
func (w *World) ShipGuestAttest(payload []byte) {
	w.Net.SendFrame(w.guestBuilder.UDPPacket(packet.UDPSpec{
		SrcMAC: guestMAC, DstMAC: attMAC, SrcIP: guestIP, DstIP: attIP,
		SrcPort: 7843, DstPort: 7844, Payload: payload,
	}))
}

// SendBenignCommand injects one cloud→plug command frame with benign
// attribution (the real cloud's source MAC).
func (w *World) SendBenignCommand(size int) {
	now := w.Clock.Now()
	f := w.benignFramer.Frame(flows.Record{
		Time: now, Size: size, Proto: "tcp", Dir: flows.DirInbound,
		RemoteIP: cloudIP, LocalPort: 40000, RemotePort: 443,
		TCPFlags: 0x18, TLSVersion: 0x0303, Category: flows.CategoryManual,
	})
	copy(f[0:6], gwMAC[:])
	copy(f[6:12], cloudMAC[:])
	w.Net.SendFrame(f)
}

// inspector is the gateway hook: resolve each frame to a registered device,
// batch through ProcessBatch, attribute the verdict to attacker or benign
// origin by the frame's pre-rewrite source MAC, and record the stream.
type inspector struct {
	w *World
}

func (in *inspector) InspectBatch(frames [][]byte, now time.Time) []bool {
	w := in.w
	allow := make([]bool, len(frames))
	pkts := make([]core.PacketIn, 0, len(frames))
	backrefs := make([]int, 0, len(frames))
	fromAtk := make([]bool, 0, len(frames))
	for i, f := range frames {
		p := packet.Decode(f, packet.CaptureInfo{Timestamp: now, Length: len(f), CaptureLength: len(f)})
		var (
			rec   flows.Record
			name  string
			found bool
		)
		for _, de := range w.deviceList {
			if r, ok := devices.RecordFromFrame(p, de.ip, nil); ok {
				rec, name, found = r, de.name, true
				break
			}
		}
		if !found {
			allow[i] = true
			continue
		}
		pkts = append(pkts, core.PacketIn{Device: name, Rec: rec})
		backrefs = append(backrefs, i)
		fromAtk = append(fromAtk, len(f) >= 12 && bytes.Equal(f[6:12], atkMAC[:]))
	}
	for j, d := range w.Proxy.ProcessBatch(pkts) {
		admitted := d.Verdict == core.Allow
		allow[backrefs[j]] = admitted
		mark := ""
		if fromAtk[j] {
			mark = " atk"
			w.res.Score.AttackerPackets++
			if admitted {
				w.res.Score.AttackerAdmitted++
			} else {
				w.res.Score.AttackerBlocked++
				w.noteDetection(now)
			}
		} else {
			w.res.Score.BenignPackets++
			if !admitted {
				w.res.Score.BenignBlocked++
			}
		}
		w.res.Decisions = append(w.res.Decisions, fmt.Sprintf("+%07dms %s %s %s%s",
			now.Sub(w.epoch)/time.Millisecond, pkts[j].Device, d.Verdict, d.Reason, mark))
	}
	return allow
}

// Run executes one adversarial scenario to completion on a virtual clock.
// Everything is deterministic in s.Seed: replays and different shard counts
// produce byte-identical decision traces, scores, and metric snapshots.
func Run(s Scenario) (*Result, error) {
	s.defaults()
	spec := s.Attack.Spec()
	res := &Result{
		Score:  Score{Attack: spec.Name, Mechanism: spec.Mechanism, Cell: spec.Cell, TimeToDetectMs: -1},
		Locked: make(map[string]bool),
	}
	clock := simclock.NewVirtual()
	reg := obs.NewRegistry()
	nw := netsim.New(clock, simclock.NewRNG(s.Seed))
	nw.SetObs(reg)
	epoch := clock.Now()
	bootEnd := epoch.Add(s.Bootstrap)
	runEnd := bootEnd.Add(s.Duration)

	// Pairing: the victim phone always; a guest phone under its own alias
	// when the attack needs a multi-user home.
	proxyKS, err := keystore.New(mrand.New(mrand.NewSource(s.Seed + 100)))
	if err != nil {
		return nil, err
	}
	phoneKS, err := keystore.New(mrand.New(mrand.NewSource(s.Seed + 101)))
	if err != nil {
		return nil, err
	}
	offer, err := keystore.NewPairingOffer(proxyKS, mrand.New(mrand.NewSource(s.Seed+102)))
	if err != nil {
		return nil, err
	}
	if _, err := keystore.AcceptPairing(phoneKS, offer); err != nil {
		return nil, err
	}
	validator, err := sharedValidator()
	if err != nil {
		return nil, err
	}

	proxy := core.NewProxy(clock, proxyKS, validator, core.Config{
		Bootstrap:    s.Bootstrap,
		Shards:       s.Shards,
		AttestWindow: s.AttestWindow,
		Obs:          reg,
	})
	if err := proxy.AddDevice(core.DeviceConfig{
		Name: "plug", Classifier: core.RuleClassifier{NotificationSize: 235}, GraceN: 2,
	}); err != nil {
		return nil, err
	}
	app := core.NewClientApp(clock, phoneKS)
	app.BindApp("com.plug.app", "plug")

	w := &World{
		Clock: clock, Net: nw, Proxy: proxy, App: app,
		BootEnd: bootEnd, RunEnd: runEnd,
		scn: s, spec: spec, res: res, epoch: epoch,
		validator:    validator,
		benignGen:    sensors.NewGenerator(simclock.NewRNG(s.Seed)),
		AtkGen:       sensors.NewGenerator(simclock.NewRNG(s.Seed).Fork("attack-imu")),
		attackerTags: make(map[[32]byte]bool),
		atkFramers:   make(map[netip.Addr]*devices.Framer),
		deviceList:   []deviceEntry{{"plug", devIP}},
	}

	if spec.GuestPhone {
		guestKS, err := keystore.New(mrand.New(mrand.NewSource(s.Seed + 103)))
		if err != nil {
			return nil, err
		}
		guestOffer, err := keystore.NewPairingOfferAlias(proxyKS, mrand.New(mrand.NewSource(s.Seed+104)), GuestAlias)
		if err != nil {
			return nil, err
		}
		if _, err := keystore.AcceptPairing(guestKS, guestOffer); err != nil {
			return nil, err
		}
		proxy.RegisterPairingAlias(GuestAlias)
		w.GuestApp = core.NewClientApp(clock, guestKS)
		w.GuestApp.BindApp("com.plug.app", "plug")
	}
	if spec.SecondDevice {
		if err := proxy.AddDevice(core.DeviceConfig{
			Name: "cam", Classifier: core.RuleClassifier{NotificationSize: 300}, GraceN: 2,
		}); err != nil {
			return nil, err
		}
		w.deviceList = append(w.deviceList, deviceEntry{"cam", camIP})
	}

	// Topology.
	gw := netsim.NewGateway(nw, "router", gwMAC, gwIP)
	gw.ARP.Learn(devIP, devMAC)
	if spec.SecondDevice {
		gw.ARP.Learn(camIP, camMAC)
	}
	gw.SetInspector(&inspector{w: w}, 64)

	nw.Attach(&netsim.Node{Name: "plug", MAC: devMAC, IP: devIP, Loc: netsim.LocLAN})
	if spec.SecondDevice {
		nw.Attach(&netsim.Node{Name: "cam", MAC: camMAC, IP: camIP, Loc: netsim.LocLAN})
	}
	nw.Attach(&netsim.Node{Name: "cloud", MAC: cloudMAC, IP: cloudIP, Loc: netsim.LocCloudUS})
	nw.Attach(&netsim.Node{Name: "attacker", MAC: atkMAC, IP: atkIP, Loc: netsim.LocLAN})
	nw.Attach(&netsim.Node{Name: "phone", MAC: phoneMAC, IP: phoneIP, Loc: netsim.LocMobile})
	if spec.GuestPhone {
		nw.Attach(&netsim.Node{Name: "guest", MAC: guestMAC, IP: guestIP, Loc: netsim.LocMobile})
	}

	// Attestation endpoint: one-shot UDP delivery (no courier — the
	// adversarial runs keep the channel healthy so rows measure the
	// authenticator, not transport weather). Attribution is by payload tag:
	// the attacker registers every payload it ships, so a replay of captured
	// victim bytes scores as forged even though the MAC verifies.
	nw.Attach(&netsim.Node{Name: "fiat-attest", MAC: attMAC, IP: attIP, Loc: netsim.LocLAN,
		Recv: func(_ *netsim.Node, f []byte, now time.Time) {
			p := packet.Decode(f, packet.CaptureInfo{Timestamp: now, Length: len(f), CaptureLength: len(f)})
			udp := p.UDP()
			if udp == nil || len(udp.LayerPayload()) < 32 {
				return
			}
			payload := udp.LayerPayload()
			var tag [32]byte
			copy(tag[:], payload[len(payload)-32:])
			forged := w.attackerTags[tag]
			human, err := proxy.HandleAttestation(payload)
			if !forged {
				return
			}
			w.res.Score.AttestForged++
			if err != nil || !human {
				// The guard rejected the bytes, or the humanness model
				// rejected the interaction — either way the forgery failed.
				w.res.Score.AttestRejected++
				w.noteDetection(now)
			} else {
				w.res.Score.AttestAccepted++
			}
		}})

	// Benign life of the home: the plug heartbeats to its cloud all run.
	framer := devices.NewFramer(devIP, devMAC, gwMAC)
	w.benignFramer = framer
	var heartbeat func(now time.Time)
	heartbeat = func(now time.Time) {
		if now.After(runEnd) {
			return
		}
		nw.SendFrame(framer.Frame(flows.Record{
			Time: now, Size: 128, Proto: "tcp", Dir: flows.DirOutbound,
			RemoteIP: cloudIP, LocalPort: 40000, RemotePort: 443,
			Category: flows.CategoryControl,
		}))
		clock.AfterFunc(10*time.Second, heartbeat)
	}
	clock.AfterFunc(10*time.Second, heartbeat)

	// The dormant flow: periodic during bootstrap, silent afterwards — a
	// learned rule with no living owner.
	if spec.DormantFlow {
		var dormant func(now time.Time)
		dormant = func(now time.Time) {
			if now.After(bootEnd) {
				return
			}
			nw.SendFrame(framer.Frame(flows.Record{
				Time: now, Size: 96, Proto: "udp", Dir: flows.DirOutbound,
				RemoteIP: cloudIP, LocalPort: 41000, RemotePort: 8443,
				Category: flows.CategoryControl,
			}))
			clock.AfterFunc(15*time.Second, dormant)
		}
		clock.AfterFunc(15*time.Second, dormant)
	}

	// The camera heartbeats until it churns away 30 s into enforcement,
	// leaving its identity (IP, learned rules) for the attacker to claim.
	if spec.SecondDevice {
		camFramer := devices.NewFramer(camIP, camMAC, gwMAC)
		churn := bootEnd.Add(30 * time.Second)
		var camBeat func(now time.Time)
		camBeat = func(now time.Time) {
			if now.After(churn) {
				return
			}
			nw.SendFrame(camFramer.Frame(flows.Record{
				Time: now, Size: 180, Proto: "tcp", Dir: flows.DirOutbound,
				RemoteIP: cloudIP, LocalPort: 41000, RemotePort: 8883,
				Category: flows.CategoryControl,
			}))
			clock.AfterFunc(12*time.Second, camBeat)
		}
		clock.AfterFunc(12*time.Second, camBeat)
	}

	// The victim's benign manual interactions: touch, attestation 400 ms
	// later from the phone, command burst from the real cloud ~1 s after the
	// touch (the Table 7 ordering). Windows are pre-screened human.
	var benignB packet.Builder
	if !spec.NoBenignManual {
		for _, off := range []time.Duration{15 * time.Second, 75 * time.Second} {
			win := w.HumanWindow()
			touch := s.Bootstrap + off
			clock.AfterFunc(touch+400*time.Millisecond, func(time.Time) {
				payload, err := app.Attest("com.plug.app", win)
				if err != nil {
					return
				}
				w.BenignAttests = append(w.BenignAttests, payload)
				nw.SendFrame(benignB.UDPPacket(packet.UDPSpec{
					SrcMAC: phoneMAC, DstMAC: attMAC, SrcIP: phoneIP, DstIP: attIP,
					SrcPort: 7843, DstPort: 7844, Payload: payload,
				}))
			})
			for j, lag := range []time.Duration{time.Second, 1100 * time.Millisecond, 1200 * time.Millisecond} {
				size := 235
				if j > 0 {
					size = 134
				}
				sz := size
				clock.AfterFunc(touch+lag, func(time.Time) { w.SendBenignCommand(sz) })
			}
		}
	}

	// The attack schedules itself.
	s.Attack.Arm(w)

	// Housekeeping: flush the gateway batch and settle pending decisions
	// once per virtual second, as cmd/fiat-proxy would.
	var tick func(now time.Time)
	tick = func(now time.Time) {
		gw.Flush()
		proxy.SweepPending()
		if now.Before(runEnd) {
			clock.AfterFunc(time.Second, tick)
		}
	}
	clock.AfterFunc(time.Second, tick)

	clock.Run(runEnd)
	clock.AdvanceTo(runEnd)
	gw.Flush()

	res.Log = proxy.Log()
	res.Stats = proxy.StatsSnapshot()
	res.Metrics = reg.Snapshot()
	for _, de := range w.deviceList {
		locked := proxy.Locked(de.name)
		res.Locked[de.name] = locked
		if locked {
			res.Score.Lockouts++
		}
	}
	res.Score.AttestStale = res.Stats.AttestationsStale
	res.Score.AttestReplayed = res.Stats.AttestationsReplayed
	if w.detected && w.attackStarted {
		res.Score.TimeToDetectMs = int64(w.detectAt.Sub(w.attackStart) / time.Millisecond)
	}
	return res, nil
}
