package chaos

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"fiat/internal/core"
)

// TestScenarioAsyncParity: the ring-fed async pipeline driven through the
// full netsim fabric — gateway batching, courier faults, partitions, pending
// sweeps — produces a Result identical to the goroutine-fan-out sharded
// engine on every surface, including the shared metrics snapshot.
func TestScenarioAsyncParity(t *testing.T) {
	s := crashScenario()
	sync, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Async = true
	async, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if sync.DecisionTrace() != async.DecisionTrace() {
		t.Errorf("async decision stream diverges:\n--- sync ---\n%s\n--- async ---\n%s",
			sync.DecisionTrace(), async.DecisionTrace())
	}
	if sync.LogTrace() != async.LogTrace() {
		t.Error("async audit log diverges from sync")
	}
	if !reflect.DeepEqual(sync.Stats, async.Stats) {
		t.Errorf("async stats diverge:\nsync:  %+v\nasync: %+v", sync.Stats, async.Stats)
	}
	if !reflect.DeepEqual(sync.Fault, async.Fault) {
		t.Errorf("fault stats diverge:\nsync:  %+v\nasync: %+v", sync.Fault, async.Fault)
	}
	if sync.Metrics != async.Metrics {
		t.Error("async metrics snapshot diverges from sync")
	}
	if sync.Locked != async.Locked || sync.PendingLeft != async.PendingLeft ||
		sync.AttestationsSent != async.AttestationsSent ||
		sync.AttestationsDelivered != async.AttestationsDelivered ||
		sync.DeviceFramesDelivered != async.DeviceFramesDelivered {
		t.Errorf("scalar results diverge:\nsync:  %+v\nasync: %+v", sync, async)
	}
}

// compareToReference checks a durable arm's decision-bearing surfaces
// against the plain (unmanaged) reference run. Metrics are excluded: the
// managed proxy observes into its own registry, so the shared snapshot
// legitimately differs between managed and unmanaged runs.
func compareToReference(t *testing.T, arm string, ref, got *Result) {
	t.Helper()
	if ref.DecisionTrace() != got.DecisionTrace() {
		t.Errorf("%s: decision stream diverges from reference:\n--- reference ---\n%s\n--- %s ---\n%s",
			arm, ref.DecisionTrace(), arm, got.DecisionTrace())
	}
	if ref.LogTrace() != got.LogTrace() {
		t.Errorf("%s: audit log diverges from reference", arm)
	}
	if !reflect.DeepEqual(ref.Stats, got.Stats) {
		t.Errorf("%s: stats diverge:\nreference: %+v\n%s: %+v", arm, ref.Stats, arm, got.Stats)
	}
	if ref.Locked != got.Locked {
		t.Errorf("%s: lockout state %v, reference %v", arm, got.Locked, ref.Locked)
	}
	if ref.PendingLeft != got.PendingLeft {
		t.Errorf("%s: pending depth %d, reference %d", arm, got.PendingLeft, ref.PendingLeft)
	}
	if ref.AttestationsSent != got.AttestationsSent || ref.AttestationsDelivered != got.AttestationsDelivered {
		t.Errorf("%s: courier accounting diverges: sent %d/%d delivered %d/%d", arm,
			got.AttestationsSent, ref.AttestationsSent, got.AttestationsDelivered, ref.AttestationsDelivered)
	}
	if ref.DeviceFramesDelivered != got.DeviceFramesDelivered {
		t.Errorf("%s: device frames %d, reference %d", arm, got.DeviceFramesDelivered, ref.DeviceFramesDelivered)
	}
}

// TestRestartUnderLoad is the satellite oracle: a durably-managed gateway
// killed and reopened mid-scenario — twice, with couriers, faults, and a
// partition live in the fabric — must be indistinguishable from one that
// never died. Three arms per engine: the plain reference run, a durable arm
// with no restart, and a durable arm restarted at 30 s and 60 s after
// bootstrap. The restarted arm's decisions/log/stats must equal the plain
// reference, and its final encoded state must be byte-identical to the
// uninterrupted durable arm's.
func TestRestartUnderLoad(t *testing.T) {
	for _, tc := range []struct {
		name  string
		async bool
	}{{"sharded", false}, {"async", true}} {
		t.Run(tc.name, func(t *testing.T) {
			s := crashScenario()
			s.Async = tc.async
			ref, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			restartAt := []time.Duration{30 * time.Second, 60 * time.Second}

			uninterrupted, repA, err := RunDurable(s, t.TempDir(), nil, 20)
			if err != nil {
				t.Fatal(err)
			}
			if repA.Restarts != 0 || repA.Replayed != 0 {
				t.Fatalf("uninterrupted arm reports restarts=%d replayed=%d", repA.Restarts, repA.Replayed)
			}
			restarted, repB, err := RunDurable(s, t.TempDir(), restartAt, 20)
			if err != nil {
				t.Fatal(err)
			}
			if repB.Restarts != len(restartAt) {
				t.Fatalf("completed %d restarts, want %d", repB.Restarts, len(restartAt))
			}
			if repB.Replayed == 0 {
				t.Fatal("restarts replayed no WAL operations; recovery was vacuous")
			}
			if repB.Checkpoints == 0 {
				t.Fatal("no periodic checkpoints taken; recovery never composed snapshot+suffix")
			}

			compareToReference(t, "uninterrupted-durable", ref, uninterrupted)
			compareToReference(t, "restarted-durable", ref, restarted)
			// The recovered proxy's full image — devices, audit log, stats,
			// pending queue, replay guard, obs registry — must match the
			// never-killed managed twin byte for byte.
			if !bytes.Equal(repA.State, repB.State) {
				t.Errorf("restarted state image (%d bytes) != uninterrupted state image (%d bytes)",
					len(repB.State), len(repA.State))
			}
			if uninterrupted.Metrics != restarted.Metrics {
				t.Error("shared fabric metrics diverge between durable arms")
			}
			// The scenario still exercised its degraded-mode content across
			// the restarts.
			if !restarted.HasReason(core.ReasonLateAttest) && !restarted.HasReason(core.ReasonOutageExcused) &&
				!restarted.HasReason(core.ReasonPendingHold) {
				t.Errorf("restarted run shows no degraded-mode reasons; scenario content lost")
			}
		})
	}
}

// TestRestartUnderLoadZeroCopy is the cross-arm differential under live
// load: the same twice-restarted scenario recovered through the zero-copy
// artifact path must match the plain reference on every decision-bearing
// surface AND produce a final state image byte-identical to the copied-arm
// recovery's. Restores happen mid-scenario, so the recovered views carry the
// rest of the run — arrival updates mutate aliased snapshot memory.
func TestRestartUnderLoadZeroCopy(t *testing.T) {
	s := crashScenario()
	ref, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	restartAt := []time.Duration{30 * time.Second, 60 * time.Second}
	copied, repC, err := RunDurable(s, t.TempDir(), restartAt, 20)
	if err != nil {
		t.Fatal(err)
	}
	s.ZeroCopyRestore = true
	zero, repZ, err := RunDurable(s, t.TempDir(), restartAt, 20)
	if err != nil {
		t.Fatal(err)
	}
	if repZ.Restarts != len(restartAt) {
		t.Fatalf("completed %d restarts, want %d", repZ.Restarts, len(restartAt))
	}
	if repZ.Replayed == 0 {
		t.Fatal("zero-copy restarts replayed no WAL operations; recovery was vacuous")
	}
	compareToReference(t, "zero-copy-durable", ref, zero)
	compareToReference(t, "copied-durable", ref, copied)
	if !bytes.Equal(repC.State, repZ.State) {
		t.Errorf("zero-copy state image (%d bytes) != copied state image (%d bytes)",
			len(repZ.State), len(repC.State))
	}
}
