package chaos

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"fiat/internal/durable"
	"fiat/internal/simclock"
	"fiat/internal/swap"
)

// driftScenario is the firmware-update corpus entry: 20 s after bootstrap
// ends, the plug's telemetry changes shape (size +200, pace 10 s → 3 s), the
// learned heartbeat rule goes stale, and the relearning lifecycle must carry
// the device to a promoted generation-2 artifact before the run ends.
func driftScenario(seed int64, shards int) Scenario {
	return Scenario{
		Seed:           seed,
		Shards:         shards,
		Bootstrap:      2 * time.Minute,
		Duration:       4 * time.Minute,
		HeartbeatEvery: 10 * time.Second,
		ShiftAt:        20 * time.Second,
		ShiftEvery:     3 * time.Second,
		ShiftSize:      200,
		Relearn: swap.Options{
			Enabled:      true,
			MissRatio:    0.5,
			MarginDrift:  0.9, // margin signal parked: this corpus drives the miss-ratio path
			LockoutBurst: 99,  // lockout signal parked: no attack traffic in this corpus
			MinSample:    5,
			RelearnFor:   30 * time.Second,
			ShadowFor:    30 * time.Second,
			ShadowMin:    3,
			Cooldown:     10 * time.Minute,
		},
	}
}

// requirePromoted asserts a drift run completed the whole lifecycle: the
// detector fired, a candidate relearned and shadowed, promotion landed
// (generation 2, lifecycle idle again, zero rollbacks), and the promoted
// artifact actually absorbed the shifted traffic (rule hits resumed).
func requirePromoted(t *testing.T, label string, res *Result) {
	t.Helper()
	if res.Generation != 2 {
		t.Fatalf("%s: live artifact generation %d, want 2 (promotion did not land)", label, res.Generation)
	}
	if res.SwapPhase != swap.PhaseIdle {
		t.Fatalf("%s: lifecycle ended in phase %v, want idle", label, res.SwapPhase)
	}
	for _, want := range []string{
		"fiat_swap_relearns_total 1",
		"fiat_swap_generations_total 1",
		"fiat_swap_promotions_total 1",
		"fiat_swap_rollbacks_total 0",
	} {
		if !strings.Contains(res.SwapMetrics, want) {
			t.Fatalf("%s: swap metrics missing %q:\n%s", label, want, res.SwapMetrics)
		}
	}
	// Pre-shift the rule hits only twice (freeze beat + one more); the bulk
	// must come from the promoted artifact matching the shifted beat.
	if res.Stats.RuleHits < 20 {
		t.Fatalf("%s: only %d rule hits; promoted artifact never matched the shifted traffic", label, res.Stats.RuleHits)
	}
	if res.Locked {
		t.Fatalf("%s: benign drift locked the device out", label)
	}
}

// TestDriftDetectionPromotesAcrossEngines runs the drift-injection corpus on
// the sequential, sharded, and async engines: every arm must complete the
// drift → relearn → shadow → promote lifecycle, and because the detector
// feeds on engine-invariant counters and advances only at housekeeping
// ticks, the decision streams, audit logs, obs snapshots, and swap registries
// must be byte-identical across all three.
func TestDriftDetectionPromotesAcrossEngines(t *testing.T) {
	for _, seed := range []int64{5, 19} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref, err := Run(driftScenario(seed, 1))
			if err != nil {
				t.Fatal(err)
			}
			requirePromoted(t, "seq", ref)
			for _, arm := range []struct {
				name   string
				shards int
				async  bool
			}{{"sharded", 4, false}, {"async", 4, true}} {
				s := driftScenario(seed, arm.shards)
				s.Async = arm.async
				got, err := Run(s)
				if err != nil {
					t.Fatal(err)
				}
				requirePromoted(t, arm.name, got)
				if got.DecisionTrace() != ref.DecisionTrace() {
					t.Fatalf("%s: decision trace diverges from sequential", arm.name)
				}
				if got.LogTrace() != ref.LogTrace() {
					t.Fatalf("%s: audit log diverges from sequential", arm.name)
				}
				if got.Metrics != ref.Metrics {
					t.Fatalf("%s: obs snapshot diverges from sequential", arm.name)
				}
				if got.SwapMetrics != ref.SwapMetrics {
					t.Fatalf("%s: swap registry diverges from sequential:\n%s\nvs\n%s", arm.name, got.SwapMetrics, ref.SwapMetrics)
				}
			}
		})
	}
}

// driftLifecycleOps locates the lifecycle milestones in a recorded op
// stream by replaying it against a probe proxy: the first op after which the
// plug is in shadow evaluation, and the first op after which generation 2 is
// live. Kill points between the two crash mid-shadow.
func driftLifecycleOps(t *testing.T, s Scenario, ops []RecordedOp) (shadowAt, promoteAt int) {
	t.Helper()
	clock := simclock.NewVirtual()
	probe, err := buildReplayProxy(s)(clock)
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	shadowAt, promoteAt = -1, -1
	for i := range ops {
		op := &ops[i]
		clock.AdvanceTo(op.Time)
		switch op.Kind {
		case durable.OpBatch:
			probe.ProcessBatch(op.Batch)
		case durable.OpAttestation:
			probe.HandleAttestation(op.Payload)
		case durable.OpSweep:
			probe.SweepPending()
		case durable.OpChannelDown:
			probe.AttestationChannelDown()
		case durable.OpChannelUp:
			probe.AttestationChannelUp()
		case durable.OpFlush:
			probe.FlushEvent(op.Device)
		}
		if shadowAt < 0 && probe.SwapPhase("plug") == swap.PhaseShadow {
			shadowAt = i
		}
		if meta, ok := probe.ArtifactMeta("plug"); ok && meta.Generation >= 2 {
			promoteAt = i
			return shadowAt, promoteAt
		}
	}
	return shadowAt, promoteAt
}

// TestDriftCrashMidShadowRecovers kills the durable proxy halfway between
// shadow-start and promotion — the WAL loses its unsynced tail while a
// candidate artifact is mid-evaluation — and requires recovery to land the
// run byte-identical to the uninterrupted reference: same decisions, same
// final serialized state, and the same promoted generation-2 artifact.
func TestDriftCrashMidShadowRecovers(t *testing.T) {
	s := driftScenario(5, 4)
	_, ops, err := RecordOps(s)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReplayOps(s, ops)
	if err != nil {
		t.Fatal(err)
	}
	shadowAt, promoteAt := driftLifecycleOps(t, s, ops)
	if shadowAt < 0 || promoteAt <= shadowAt {
		t.Fatalf("lifecycle milestones not found in op stream: shadow at %d, promote at %d", shadowAt, promoteAt)
	}

	dir, err := os.MkdirTemp("", "fiat-drift-crash-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	// Op i carries WAL seq i+1; aim the kill at the op midway through shadow.
	mid := (shadowAt + promoteAt) / 2
	kill := durable.KillSpec{Point: durable.KillAfterAppendUnsynced, Seq: uint64(mid + 1)}
	got, err := ReplayOpsDurable(s, ops, dir, &kill, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.CrashOp <= shadowAt || got.CrashOp > promoteAt {
		t.Fatalf("crash fired at op %d, want inside the shadow window (%d, %d]", got.CrashOp, shadowAt, promoteAt)
	}
	if got.DecisionTrace() != ref.DecisionTrace() {
		t.Fatal("recovered decision trace diverges from uninterrupted reference")
	}
	if !bytes.Equal(got.State, ref.State) {
		t.Fatalf("recovered state (%d bytes) not byte-identical to reference (%d bytes)", len(got.State), len(ref.State))
	}

	// The recovered image restores into a fresh proxy wearing generation 2 —
	// the crash landed mid-shadow, recovery replayed the lifecycle to its end.
	clock := simclock.NewVirtual()
	restored, err := buildReplayProxy(s)(clock)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreState(got.State); err != nil {
		t.Fatalf("restore of recovered state: %v", err)
	}
	meta, ok := restored.ArtifactMeta("plug")
	if !ok || meta.Generation != 2 || meta.Parent != 1 {
		t.Fatalf("restored artifact meta %+v ok=%v, want generation 2 of parent 1", meta, ok)
	}
}

// TestDriftCrashMatrix runs the standard five-point crash matrix over the
// drift scenario: every kill point — including the snapshot kills, whose
// checkpoints serialize the mid-shadow candidate — must reconcile to a
// recovery indistinguishable from never crashing.
func TestDriftCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is the long oracle; run without -short")
	}
	reports, err := CrashMatrix(driftScenario(5, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.CrashOp < 0 {
			t.Errorf("%s: kill never fired (ops=%d)", r.Point, r.Ops)
		}
		if !r.Identical {
			t.Errorf("%s: recovery not identical to reference: %+v", r.Point, r)
		}
	}
}
