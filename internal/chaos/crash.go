package chaos

import (
	"bytes"
	"errors"
	"fmt"
	mrand "math/rand"
	"os"
	"strings"
	"time"

	"fiat/internal/artifact"
	"fiat/internal/core"
	"fiat/internal/durable"
	"fiat/internal/keystore"
	"fiat/internal/obs"
	"fiat/internal/simclock"
)

// The crash harness closes the durability loop: a scenario is run once
// through the full netsim fabric with a recording wrapper capturing the
// proxy's exact input stream, and that stream is then replayed through two
// arms — a plain proxy (the uninterrupted reference) and a durable.Manager
// crashed at a seeded kill point and recovered. The oracle is byte equality
// of the final core.Proxy.EncodeState images and of the rendered decision
// traces: recovery is correct only if the restarted proxy is
// indistinguishable from one that never died.

// RecordedOp is one proxy input captured during a run, stamped with the
// virtual-clock instant it was applied at.
type RecordedOp struct {
	Kind    durable.Kind
	Time    time.Time
	Batch   []core.PacketIn // OpBatch
	Payload []byte          // OpAttestation
	Device  string          // OpFlush
}

// recorder interposes on the engine and captures every input op. It is
// transparent: arguments and results pass straight through.
type recorder struct {
	eng   engine
	clock simclock.Clock
	ops   []RecordedOp
}

func (r *recorder) note(op RecordedOp) {
	op.Time = r.clock.Now()
	r.ops = append(r.ops, op)
}

func (r *recorder) ProcessBatch(batch []core.PacketIn) []core.Decision {
	cp := make([]core.PacketIn, len(batch))
	copy(cp, batch)
	r.note(RecordedOp{Kind: durable.OpBatch, Batch: cp})
	return r.eng.ProcessBatch(batch)
}

func (r *recorder) HandleAttestation(payload []byte) (bool, error) {
	r.note(RecordedOp{Kind: durable.OpAttestation, Payload: append([]byte(nil), payload...)})
	return r.eng.HandleAttestation(payload)
}

func (r *recorder) SweepPending() int {
	r.note(RecordedOp{Kind: durable.OpSweep})
	return r.eng.SweepPending()
}

func (r *recorder) AttestationChannelDown() {
	r.note(RecordedOp{Kind: durable.OpChannelDown})
	r.eng.AttestationChannelDown()
}

func (r *recorder) AttestationChannelUp() {
	r.note(RecordedOp{Kind: durable.OpChannelUp})
	r.eng.AttestationChannelUp()
}

func (r *recorder) FlushEvent(device string) *core.Decision {
	r.note(RecordedOp{Kind: durable.OpFlush, Device: device})
	return r.eng.FlushEvent(device)
}

// RecordOps runs the scenario with the recorder interposed and returns both
// the normal result and the captured input stream. Because the recorder is
// transparent, the result is byte-identical to Run's on the same scenario.
func RecordOps(s Scenario) (*Result, []RecordedOp, error) {
	rec := &recorder{}
	res, err := run(s, func(e engine, clock *simclock.VirtualClock) engine {
		rec.eng, rec.clock = e, clock
		return rec
	})
	return res, rec.ops, err
}

// buildReplayProxy reproduces Run's proxy construction bit-for-bit from the
// scenario alone — the property durable recovery leans on: rebuilding the
// proxy must yield the same configuration (checksum-enforced) every time.
func buildReplayProxy(s Scenario) durable.BuildProxy {
	s.defaults()
	return func(clock simclock.Clock) (*core.Proxy, error) {
		ks, err := keystore.New(mrand.New(mrand.NewSource(s.Seed + 100)))
		if err != nil {
			return nil, err
		}
		if _, err := keystore.NewPairingOffer(ks, mrand.New(mrand.NewSource(s.Seed+102))); err != nil {
			return nil, err
		}
		validator, err := sharedValidator()
		if err != nil {
			return nil, err
		}
		var store *artifact.Store
		if s.ZeroCopyRestore {
			// A fresh store per build: each recovery owns its views, and the
			// config checksum is store-independent so the arms interchange.
			store = artifact.NewStore()
		}
		proxy := core.NewProxy(clock, ks, validator, core.Config{
			Bootstrap:     s.Bootstrap,
			Shards:        s.Shards,
			Async:         s.Async,
			PendingWindow: s.PendingWindow,
			Relearn:       s.Relearn,
			Obs:           obs.NewRegistry(),
			Artifacts:     store,
		})
		if err := proxy.AddDevice(core.DeviceConfig{
			Name: "plug", Classifier: core.RuleClassifier{NotificationSize: 235}, GraceN: 1,
		}); err != nil {
			return nil, err
		}
		return proxy, nil
	}
}

// ReplayResult is one replay arm's outcome.
type ReplayResult struct {
	// Decisions is the rendered decision stream, same format as
	// Result.Decisions so traces compare across recording and replay.
	Decisions []string
	// State is the final core.Proxy.EncodeState image.
	State []byte
	// CrashOp, Replayed, Resumed, Truncated describe the durable arm's
	// crash: the op index the kill fired at, how many ops recovery
	// re-applied from the WAL, how many the harness re-fed afterwards, and
	// how many torn artifacts recovery truncated.
	CrashOp   int
	Replayed  int
	Resumed   int
	Truncated int64
}

// DecisionTrace renders the decision stream for byte-exact comparison.
func (r *ReplayResult) DecisionTrace() string { return strings.Join(r.Decisions, "\n") }

func renderReplayDecisions(at time.Time, ds []core.Decision) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = fmt.Sprintf("+%07dms plug %s %s", at.Sub(simclock.Epoch)/time.Millisecond, d.Verdict, d.Reason)
	}
	return out
}

// ReplayOps feeds a recorded stream through a plain proxy — the
// uninterrupted reference arm.
func ReplayOps(s Scenario, ops []RecordedOp) (*ReplayResult, error) {
	clock := simclock.NewVirtual()
	proxy, err := buildReplayProxy(s)(clock)
	if err != nil {
		return nil, err
	}
	defer proxy.Close()
	res := &ReplayResult{CrashOp: -1}
	for i := range ops {
		op := &ops[i]
		clock.AdvanceTo(op.Time)
		switch op.Kind {
		case durable.OpBatch:
			res.Decisions = append(res.Decisions, renderReplayDecisions(op.Time, proxy.ProcessBatch(op.Batch))...)
		case durable.OpAttestation:
			proxy.HandleAttestation(op.Payload)
		case durable.OpSweep:
			proxy.SweepPending()
		case durable.OpChannelDown:
			proxy.AttestationChannelDown()
		case durable.OpChannelUp:
			proxy.AttestationChannelUp()
		case durable.OpFlush:
			proxy.FlushEvent(op.Device)
		}
	}
	res.State = proxy.EncodeState()
	return res, nil
}

// replaySegBytes keeps WAL segments small so every crash scenario exercises
// rotation.
const replaySegBytes = 4 << 10

// ReplayOpsDurable feeds a recorded stream through a durable.Manager with an
// optional kill point armed. Every sweep doubles as the maintenance tick,
// and every checkpointEvery-th sweep takes a checkpoint. When the kill
// fires, the manager is reopened (recovery) and the remaining ops re-fed
// from where the durable prefix ends; decisions regenerated during WAL
// replay overwrite the originals, so the returned trace is exactly what an
// operator reading the recovered audit trail would reconstruct.
func ReplayOpsDurable(s Scenario, ops []RecordedOp, dir string, kill *durable.KillSpec, checkpointEvery int) (*ReplayResult, error) {
	build := buildReplayProxy(s)
	res := &ReplayResult{CrashOp: -1}
	decs := make([][]string, len(ops))

	feed := func(mgr *durable.Manager, clock *simclock.VirtualClock, from int) (int, error) {
		sweeps := 0
		for i := from; i < len(ops); i++ {
			op := &ops[i]
			clock.AdvanceTo(op.Time)
			var ds []core.Decision
			var err error
			switch op.Kind {
			case durable.OpBatch:
				ds, err = mgr.ProcessBatch(op.Batch)
			case durable.OpAttestation:
				err = mgr.HandleAttestation(op.Payload)
			case durable.OpSweep:
				err = mgr.SweepPending()
				if err == nil {
					err = mgr.Tick()
				}
				sweeps++
				if err == nil && checkpointEvery > 0 && sweeps%checkpointEvery == 0 {
					err = mgr.Checkpoint()
				}
			case durable.OpChannelDown:
				err = mgr.AttestationChannelDown()
			case durable.OpChannelUp:
				err = mgr.AttestationChannelUp()
			case durable.OpFlush:
				_, err = mgr.FlushEvent(op.Device)
			}
			if err != nil {
				return i, err
			}
			if op.Kind == durable.OpBatch {
				decs[i] = renderReplayDecisions(op.Time, ds)
			}
		}
		return len(ops), nil
	}

	clock := simclock.NewVirtual()
	mgr, err := durable.Open(durable.Config{Dir: dir, SegmentBytes: replaySegBytes, Kill: kill}, clock, build)
	if err != nil {
		return nil, err
	}
	n, err := feed(mgr, clock, 0)
	if err != nil {
		if !errors.Is(err, durable.ErrCrashed) {
			return nil, err
		}
		res.CrashOp = n

		// Recover: fresh clock, WAL replay pins op instants, then re-feed
		// the ops the durable prefix lost. Op i carries WAL seq i+1.
		clock2 := simclock.NewVirtual()
		mgr2, err := durable.Open(durable.Config{
			Dir: dir, SegmentBytes: replaySegBytes,
			OnReplay: func(op *durable.Op, ds []core.Decision) {
				res.Replayed++
				if op.Kind == durable.OpBatch {
					decs[op.Seq-1] = renderReplayDecisions(op.Time, ds)
				}
			},
		}, clock2, build)
		if err != nil {
			return nil, fmt.Errorf("recovery: %w", err)
		}
		last := int(mgr2.LastSeq())
		res.Resumed = len(ops) - last
		if n2, err := feed(mgr2, clock2, last); err != nil {
			return nil, fmt.Errorf("crashed again at op %d: %w", n2, err)
		}
		res.Truncated = mgr2.Metrics().Counter("fiat_durable_wal_truncated_records_total").Value()
		mgr.Proxy().Close()
		mgr = mgr2
	}
	res.State = mgr.Proxy().EncodeState()
	mgr.Abort()
	mgr.Proxy().Close()
	for i := range ops {
		res.Decisions = append(res.Decisions, decs[i]...)
	}
	return res, nil
}

// CrashReport is one kill point's reconciliation outcome in the matrix.
type CrashReport struct {
	Point      string `json:"point"`
	Ops        int    `json:"ops"`
	CrashOp    int    `json:"crash_op"`
	Replayed   int    `json:"replayed_ops"`
	Resumed    int    `json:"resumed_ops"`
	Truncated  int64  `json:"truncated_records"`
	StateBytes int    `json:"state_bytes"`
	Identical  bool   `json:"identical"`
}

// CrashMatrix records one scenario, then crashes a durable replay at every
// kill point and reconciles each recovery against the uninterrupted
// reference arm. checkpointEvery is in sweeps (0 disables periodic
// checkpoints beyond the boot image).
func CrashMatrix(s Scenario, checkpointEvery int) ([]CrashReport, error) {
	_, ops, err := RecordOps(s)
	if err != nil {
		return nil, err
	}
	ref, err := ReplayOps(s, ops)
	if err != nil {
		return nil, err
	}
	total := len(ops)
	kills := []struct {
		name string
		spec durable.KillSpec
	}{
		{"mid-append", durable.KillSpec{Point: durable.KillMidAppend, Seq: uint64(total / 3)}},
		{"after-append-unsynced", durable.KillSpec{Point: durable.KillAfterAppendUnsynced, Seq: uint64(total / 2)}},
		{"mid-rotate", durable.KillSpec{Point: durable.KillMidRotate, Seq: uint64(total / 4)}},
		{"mid-snapshot", durable.KillSpec{Point: durable.KillMidSnapshot, Checkpoint: 3}},
		{"post-snapshot", durable.KillSpec{Point: durable.KillPostSnapshot, Checkpoint: 2}},
	}
	var out []CrashReport
	for _, k := range kills {
		dir, err := os.MkdirTemp("", "fiat-crash-*")
		if err != nil {
			return nil, err
		}
		spec := k.spec
		got, err := ReplayOpsDurable(s, ops, dir, &spec, checkpointEvery)
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.name, err)
		}
		out = append(out, CrashReport{
			Point:      k.name,
			Ops:        total,
			CrashOp:    got.CrashOp,
			Replayed:   got.Replayed,
			Resumed:    got.Resumed,
			Truncated:  got.Truncated,
			StateBytes: len(got.State),
			Identical:  bytes.Equal(got.State, ref.State) && got.DecisionTrace() == ref.DecisionTrace(),
		})
	}
	return out, nil
}
