package chaos

import (
	"strings"
	"testing"
	"time"

	"fiat/internal/core"
	"fiat/internal/netsim"
)

// burst30 is the ~30% mean-loss Gilbert–Elliott channel the acceptance
// scenario calls for (MeanLoss ≈ 0.30).
func burst30() *netsim.GilbertElliott {
	return &netsim.GilbertElliott{PGoodBad: 0.15, PBadGood: 0.35, LossGood: 0.05, LossBad: 0.8}
}

// TestFaultFreeShardedMatchesSequential is the determinism invariant: with
// faults disabled, the sharded engine must produce a byte-identical decision
// stream and audit log to the sequential engine on the same seeded scenario.
func TestFaultFreeShardedMatchesSequential(t *testing.T) {
	base := Scenario{
		Seed:          7,
		Duration:      60 * time.Second,
		ManualAt:      []time.Duration{10 * time.Second, 40 * time.Second},
		PendingWindow: 25 * time.Second,
	}
	seq := base
	seq.Shards = 1
	sharded := base
	sharded.Shards = 4

	rSeq, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	rSh, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if rSeq.DecisionTrace() != rSh.DecisionTrace() {
		t.Fatalf("decision streams diverge:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s",
			rSeq.DecisionTrace(), rSh.DecisionTrace())
	}
	if rSeq.LogTrace() != rSh.LogTrace() {
		t.Fatalf("audit logs diverge:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s",
			rSeq.LogTrace(), rSh.LogTrace())
	}

	// Sanity on the fault-free baseline itself: attestations beat their
	// commands, so both interactions are plain HumanOK, nothing is held,
	// nothing locks, and the command frames reach the plug.
	if !rSeq.HasReason(core.ReasonHumanOK) {
		t.Fatal("fault-free manual interaction not admitted as HumanOK")
	}
	if rSeq.HasReason(core.ReasonPendingHold) || rSeq.Stats.PendingHeld != 0 {
		t.Fatalf("fault-free run held decisions: %+v", rSeq.Stats)
	}
	if rSeq.Locked {
		t.Fatal("fault-free run locked the device")
	}
	if rSeq.AttestationsDelivered != 2 {
		t.Fatalf("AttestationsDelivered = %d, want 2", rSeq.AttestationsDelivered)
	}
	if rSeq.DeviceFramesDelivered == 0 {
		t.Fatal("no command frames reached the device")
	}
	if f := rSeq.Fault; f != (netsim.FaultStats{}) {
		t.Fatalf("fault-free run counted faults: %+v", f)
	}
}

// TestDeterministicReplay: the same scenario twice gives the same bytes.
func TestDeterministicReplay(t *testing.T) {
	s := Scenario{
		Seed:          3,
		Shards:        4,
		Duration:      90 * time.Second,
		ManualAt:      []time.Duration{22 * time.Second, 60 * time.Second},
		PendingWindow: 25 * time.Second,
		Burst:         burst30(),
		CorruptProb:   0.05,
		PartitionAt:   20 * time.Second,
		PartitionFor:  10 * time.Second,
	}
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.DecisionTrace() != b.DecisionTrace() || a.LogTrace() != b.LogTrace() {
		t.Fatal("seeded chaos run is not reproducible")
	}
	if a.Fault != b.Fault {
		t.Fatalf("fault schedules diverge: %+v vs %+v", a.Fault, b.Fault)
	}
}

// TestPartitionHealLateAdmission is the acceptance scenario: ~30% burst loss
// plus a 10 s phone⇄proxy partition across the user's interaction. The
// attestation must eventually get through after the heal, the held event
// must be retroactively admitted, and the device must not be locked out.
func TestPartitionHealLateAdmission(t *testing.T) {
	r, err := Run(Scenario{
		Seed:          3,
		Shards:        4,
		Duration:      90 * time.Second,
		ManualAt:      []time.Duration{22 * time.Second, 60 * time.Second},
		PendingWindow: 25 * time.Second,
		Burst:         burst30(),
		CorruptProb:   0.05,
		PartitionAt:   20 * time.Second, // covers the first interaction
		PartitionFor:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fault.OutageDropped == 0 {
		t.Fatal("partition never dropped a frame; scenario mis-wired")
	}
	if r.Fault.BurstDropped == 0 {
		t.Fatal("burst channel never dropped a frame; scenario mis-wired")
	}
	// Both attestations eventually land despite the weather.
	if r.AttestationsDelivered != 2 {
		t.Fatalf("AttestationsDelivered = %d, want 2 (sent %d)", r.AttestationsDelivered, r.AttestationsSent)
	}
	// The partitioned interaction was first held, then admitted late.
	if !r.HasReason(core.ReasonPendingHold) {
		t.Fatal("no decision was held during the partition")
	}
	if r.Stats.LateAdmitted == 0 || !r.HasReason(core.ReasonLateAttest) {
		t.Fatalf("held event never admitted after heal: %+v", r.Stats)
	}
	// Zero false lockouts: the outage is weather, not an attack.
	if r.Locked {
		t.Fatal("device locked out by a network partition")
	}
	if r.Stats.PendingExpired != 0 {
		t.Fatalf("pending windows expired as attacks during an outage: %+v", r.Stats)
	}
	// The healthy second interaction proceeds normally.
	if !r.HasReason(core.ReasonHumanOK) {
		t.Fatal("post-heal interaction not admitted as HumanOK")
	}
	// Benign telemetry kept flowing the whole time (the LAN path carries
	// no fault plan).
	if !strings.Contains(r.DecisionTrace(), string(core.ReasonRuleHit)) {
		t.Fatal("no rule-hit heartbeats in the decision stream")
	}
}

// TestOutageCoveringWindowIsExcused: when the partition outlives the whole
// pending window, the expiry must be excused from lockout accounting —
// the phone could not have delivered.
func TestOutageCoveringWindowIsExcused(t *testing.T) {
	r, err := Run(Scenario{
		Seed:          5,
		Shards:        2,
		Duration:      60 * time.Second,
		ManualAt:      []time.Duration{22 * time.Second},
		PendingWindow: 8 * time.Second,
		PartitionAt:   20 * time.Second,
		PartitionFor:  25 * time.Second, // outlives the window
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasReason(core.ReasonPendingHold) {
		t.Fatal("interaction not held")
	}
	if r.Stats.OutageExcused == 0 || !r.HasReason(core.ReasonOutageExcused) {
		t.Fatalf("expiry during outage not excused: %+v", r.Stats)
	}
	if r.Stats.PendingExpired != 0 {
		t.Fatalf("outage expiry counted as attack: %+v", r.Stats)
	}
	if r.Locked {
		t.Fatal("device locked out by an outage-covered expiry")
	}
	if r.Stats.LateAdmitted != 0 {
		t.Fatalf("expired window admitted late: %+v", r.Stats)
	}
	// The held command burst never reached the device (fail closed).
	if r.DeviceFramesDelivered != 0 {
		t.Fatalf("%d frames reached the device through a held event", r.DeviceFramesDelivered)
	}
	// The courier does deliver once the partition heals, even though the
	// window is gone — the proxy just has nothing left to admit.
	if r.AttestationsDelivered != 1 {
		t.Fatalf("AttestationsDelivered = %d, want 1", r.AttestationsDelivered)
	}
}

// TestStrictModeFalseLockoutContrast documents the failure the degraded mode
// exists to prevent: the identical partition scenario locks the device in
// strict mode and keeps it connected with a pending window.
func TestStrictModeFalseLockoutContrast(t *testing.T) {
	base := Scenario{
		Seed:         11,
		Shards:       2,
		Duration:     90 * time.Second,
		ManualAt:     []time.Duration{22 * time.Second, 28 * time.Second, 34 * time.Second},
		PartitionAt:  20 * time.Second,
		PartitionFor: 20 * time.Second, // no attestation before any decision
	}

	strict := base // PendingWindow zero
	rs, err := Run(strict)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Locked {
		t.Fatalf("strict mode survived the partition (drops: %+v) — contrast scenario mis-calibrated", rs.Stats)
	}

	degraded := base
	degraded.PendingWindow = 25 * time.Second
	rd, err := Run(degraded)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Locked {
		t.Fatal("degraded mode still locked the device")
	}
	if rd.Stats.LateAdmitted == 0 {
		t.Fatalf("no late admissions after heal: %+v", rd.Stats)
	}
}
