package chaos

import (
	"bytes"
	"testing"
	"time"

	"fiat/internal/durable"
)

// crashScenario is the fixed scenario behind the crash-recovery oracles: a
// lossy attestation channel plus a partition, so the recorded stream carries
// pending holds, late admits, outage excusals, and channel transitions — the
// state a recovery has the most ways to get wrong.
func crashScenario() Scenario {
	return Scenario{
		Seed:          11,
		Shards:        2,
		Duration:      90 * time.Second,
		ManualAt:      []time.Duration{10 * time.Second, 45 * time.Second},
		PendingWindow: 25 * time.Second,
		Burst:         burst30(),
		PartitionAt:   40 * time.Second,
		PartitionFor:  20 * time.Second,
	}
}

// TestRecorderTransparent: interposing the recorder must not perturb the
// run — every observable output stays byte-identical to a plain Run.
func TestRecorderTransparent(t *testing.T) {
	s := crashScenario()
	plain, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	recorded, ops, err := RecordOps(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("no ops recorded")
	}
	if plain.DecisionTrace() != recorded.DecisionTrace() {
		t.Fatal("recorder perturbed the decision stream")
	}
	if plain.LogTrace() != recorded.LogTrace() {
		t.Fatal("recorder perturbed the audit log")
	}
	if plain.Metrics != recorded.Metrics {
		t.Fatal("recorder perturbed the metrics snapshot")
	}
}

// TestReplayMatchesRecording: feeding the recorded stream into a freshly
// built proxy regenerates the recorded decision stream byte-for-byte — the
// determinism the WAL-of-inputs design rests on.
func TestReplayMatchesRecording(t *testing.T) {
	s := crashScenario()
	recorded, ops, err := RecordOps(s)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayOps(s, ops)
	if err != nil {
		t.Fatal(err)
	}
	if recorded.DecisionTrace() != replayed.DecisionTrace() {
		t.Fatalf("replay decisions diverge from recording:\n--- recorded ---\n%s\n--- replayed ---\n%s",
			recorded.DecisionTrace(), replayed.DecisionTrace())
	}
}

// TestDurableReplayUninterrupted: with no kill armed, the managed arm's
// final state and decisions equal the plain reference arm's.
func TestDurableReplayUninterrupted(t *testing.T) {
	s := crashScenario()
	_, ops, err := RecordOps(s)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReplayOps(s, ops)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReplayOpsDurable(s, ops, t.TempDir(), nil, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got.CrashOp != -1 {
		t.Fatalf("uninterrupted arm crashed at op %d", got.CrashOp)
	}
	if got.DecisionTrace() != ref.DecisionTrace() {
		t.Fatal("durable arm decisions diverge from reference")
	}
	if !bytes.Equal(got.State, ref.State) {
		t.Fatal("durable arm state diverges from reference")
	}
}

// TestCrashRecoveryMatrix is the tentpole oracle: for every seeded kill
// point, the crashed-and-recovered proxy must reconcile byte-for-byte with
// the uninterrupted reference — same decisions, same encoded state (audit
// log, stats, device state, pending queue, replay guard, obs registry).
func TestCrashRecoveryMatrix(t *testing.T) {
	reports, err := CrashMatrix(crashScenario(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("matrix covered %d kill points, want 5", len(reports))
	}
	for _, r := range reports {
		if r.CrashOp < 0 {
			t.Errorf("%s: kill point never fired", r.Point)
			continue
		}
		if !r.Identical {
			t.Errorf("%s: recovered run NOT identical to reference (crash at op %d, replayed %d, resumed %d)",
				r.Point, r.CrashOp, r.Replayed, r.Resumed)
		}
		t.Logf("%s: crash@%d replayed=%d resumed=%d truncated=%d identical=%v",
			r.Point, r.CrashOp, r.Replayed, r.Resumed, r.Truncated, r.Identical)
	}
}

// TestCrashRecoveryMatrixZeroCopy re-runs the full kill-point matrix with
// the zero-copy restore arm selected: recovery builds artifact views over
// the mapped snapshot instead of recompiling, and must still reconcile
// byte-for-byte with the uninterrupted reference. Together with
// TestCrashRecoveryMatrix this is the differential proof that the copied and
// zero-copy arms are indistinguishable under every crash point.
func TestCrashRecoveryMatrixZeroCopy(t *testing.T) {
	s := crashScenario()
	s.ZeroCopyRestore = true
	reports, err := CrashMatrix(s, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("matrix covered %d kill points, want 5", len(reports))
	}
	for _, r := range reports {
		if r.CrashOp < 0 {
			t.Errorf("%s: kill point never fired", r.Point)
			continue
		}
		if !r.Identical {
			t.Errorf("%s: zero-copy recovery NOT identical to reference (crash at op %d, replayed %d, resumed %d)",
				r.Point, r.CrashOp, r.Replayed, r.Resumed)
		}
	}
}

// TestCrashRecoveryTornTailCounted pins the torn-tail accounting: a
// mid-append crash leaves exactly one torn artifact for recovery to
// truncate, and it is reported through the recovery metrics.
func TestCrashRecoveryTornTailCounted(t *testing.T) {
	s := crashScenario()
	_, ops, err := RecordOps(s)
	if err != nil {
		t.Fatal(err)
	}
	kill := durable.KillSpec{Point: durable.KillMidAppend, Seq: uint64(len(ops) / 2)}
	got, err := ReplayOpsDurable(s, ops, t.TempDir(), &kill, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got.CrashOp < 0 {
		t.Fatal("kill never fired")
	}
	if got.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", got.Truncated)
	}
}
