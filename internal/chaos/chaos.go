// Package chaos is the scenario runner capping the fault-injection fabric:
// it replays a seeded smart-home day — bootstrap heartbeats, manual
// interactions, the phone's attestation courier — over internal/netsim with
// a FaultPlan on the phone⇄proxy path, and exposes everything a test needs
// to assert the system degrades gracefully instead of failing closed
// forever: the full decision stream (byte-comparable across runs and shard
// counts), the audit log, proxy and fault statistics, and lockout state.
//
// The invariants the suite under chaos_test.go holds the system to:
//
//  1. No panic or deadlock under -race with faults active.
//  2. A legitimate manual interaction whose attestation is delayed by burst
//     loss or a partition is eventually admitted after the network heals
//     (ReasonLateAttest), and never locks the device out.
//  3. A pending window that expires entirely inside an outage is excused
//     (ReasonOutageExcused) rather than counted as an attack.
//  4. With faults disabled, the sharded engine's decision stream is
//     byte-identical to the sequential engine's on the same scenario.
package chaos

import (
	"encoding/binary"
	"fmt"
	mrand "math/rand"
	"net/netip"
	"strings"
	"sync"
	"time"

	"fiat/internal/core"
	"fiat/internal/devices"
	"fiat/internal/flows"
	"fiat/internal/keystore"
	"fiat/internal/netsim"
	"fiat/internal/obs"
	"fiat/internal/packet"
	"fiat/internal/sensors"
	"fiat/internal/simclock"
	"fiat/internal/swap"
)

// Scenario is one seeded chaos run. Offsets in ManualAt / PartitionAt are
// measured from the end of the bootstrap window.
type Scenario struct {
	// Seed drives every random stream of the run (default 1).
	Seed int64
	// Shards selects the proxy engine width (default 1, the sequential
	// reference).
	Shards int
	// Async runs the proxy on the ring-fed asynchronous shard pipeline
	// instead of the per-batch goroutine fan-out. Decisions are
	// engine-invariant, so every oracle in this package applies unchanged.
	Async bool
	// Bootstrap is the proxy learning window (default 2 minutes).
	Bootstrap time.Duration
	// Duration is the post-bootstrap phase length (default 90 s).
	Duration time.Duration
	// HeartbeatEvery paces the device's benign telemetry (default 10 s).
	HeartbeatEvery time.Duration
	// ManualAt lists the user's interactions as offsets after bootstrap.
	ManualAt []time.Duration
	// AttestLag is touch-to-send latency on the phone (default 400 ms,
	// the Table 7 LAN-side component budget).
	AttestLag time.Duration
	// PendingWindow configures the proxy's degraded-mode hold (0 = strict).
	PendingWindow time.Duration
	// Burst, CorruptProb configure the fault plan on the phone⇄proxy path
	// (nil/0 = no plan installed).
	Burst       *netsim.GilbertElliott
	CorruptProb float64
	// PartitionAt/PartitionFor schedule a phone⇄proxy link-down window
	// (PartitionFor 0 = none).
	PartitionAt  time.Duration
	PartitionFor time.Duration
	// Relearn enables the proxy's online-relearning lifecycle (drift
	// detection, shadow evaluation, RCU hot swap) with these thresholds.
	Relearn swap.Options
	// ShiftAt > 0 injects drift: at bootEnd+ShiftAt the plug's firmware
	// "updates" and its telemetry changes shape — packet size grows by
	// ShiftSize and the beat re-paces to ShiftEvery (default 3 s) — so the
	// learned heartbeat rule stops matching and the drift detector fires.
	ShiftAt    time.Duration
	ShiftEvery time.Duration
	ShiftSize  int
	// ZeroCopyRestore gives the proxies built by the durable harnesses a
	// content-addressed artifact store, selecting the zero-copy restore arm:
	// recovery builds compiled-rule and classifier views over the snapshot
	// bytes instead of recompiling. Decisions and state images are
	// arm-invariant, so every oracle in this package applies unchanged —
	// running a crash matrix with and without this flag is the differential
	// proof.
	ZeroCopyRestore bool
}

func (s *Scenario) defaults() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards <= 0 {
		s.Shards = 1
	}
	if s.Bootstrap <= 0 {
		s.Bootstrap = 2 * time.Minute
	}
	if s.Duration <= 0 {
		s.Duration = 90 * time.Second
	}
	if s.HeartbeatEvery <= 0 {
		s.HeartbeatEvery = 10 * time.Second
	}
	if s.AttestLag <= 0 {
		s.AttestLag = 400 * time.Millisecond
	}
	if s.ShiftAt > 0 && s.ShiftEvery <= 0 {
		s.ShiftEvery = 3 * time.Second
	}
}

// Result is everything a run exposes for invariant checks.
type Result struct {
	// Decisions is the rendered per-packet decision stream in gateway
	// order; compare with DecisionTrace.
	Decisions []string
	// Log is the proxy audit log at run end.
	Log []core.LogEntry
	// Stats / Fault are the proxy and fault-fabric counters.
	Stats core.ProxyStats
	Fault netsim.FaultStats
	// Metrics is the shared observability snapshot at run end: one registry
	// wired through the proxy pipeline and the fault fabric, rendered in the
	// deterministic text exposition format. Fixed-seed replays produce this
	// string byte-identically (chaos_metrics_test.go).
	Metrics string
	// Locked reports the device's lockout state at run end.
	Locked bool
	// AttestationsSent / AttestationsDelivered count courier shipments and
	// acknowledged deliveries (retransmits excluded).
	AttestationsSent      int
	AttestationsDelivered int
	// DeviceFramesDelivered counts IP frames that reached the device.
	DeviceFramesDelivered int
	// PendingLeft is the held-decision queue depth at run end.
	PendingLeft int
	// Generation / SwapPhase / SwapMetrics describe the relearning lifecycle
	// at run end: the plug's live artifact generation (0 before its rules
	// freeze), where it sits in the lifecycle, and the swap registry rendered
	// in the deterministic exposition format. Zero-valued noise-free when
	// Scenario.Relearn is disabled.
	Generation  uint64
	SwapPhase   swap.Phase
	SwapMetrics string
}

// DecisionTrace renders the decision stream for byte-exact comparison.
func (r *Result) DecisionTrace() string { return strings.Join(r.Decisions, "\n") }

// LogTrace renders the audit log for byte-exact comparison.
func (r *Result) LogTrace() string {
	var sb strings.Builder
	for _, e := range r.Log {
		fmt.Fprintf(&sb, "%d|%s|%s|%s|%d\n", e.Time.UnixNano(), e.Device, e.Reason, e.Verdict, e.Packets)
	}
	return sb.String()
}

// Reasons seen in the audit log, for quick membership checks.
func (r *Result) HasReason(reason core.Reason) bool {
	for _, e := range r.Log {
		if e.Reason == reason {
			return true
		}
	}
	return false
}

// engine is the proxy surface a scenario drives. Run feeds the *core.Proxy
// straight through; the crash harness (crash.go) interposes a recording
// wrapper here so the exact input stream of a run can be replayed through
// the durability layer. Any wrapper must be transparent: same arguments in,
// same results out.
type engine interface {
	ProcessBatch(batch []core.PacketIn) []core.Decision
	HandleAttestation(payload []byte) (bool, error)
	SweepPending() int
	AttestationChannelDown()
	AttestationChannelUp()
	FlushEvent(device string) *core.Decision
}

// The humanness validator trains once per test binary (it fits a model);
// each run still gets its own seeded window generator so draws replay.
var (
	valOnce sync.Once
	valInst *sensors.Validator
	valErr  error
)

func sharedValidator() (*sensors.Validator, error) {
	valOnce.Do(func() {
		valInst, _, valErr = sensors.DefaultValidator(1)
	})
	return valInst, valErr
}

// Fixed topology of the scenario's smart home.
var (
	gwMAC    = packet.MAC{2, 0, 0, 0, 0, 0x01}
	devMAC   = packet.MAC{2, 0, 0, 0, 0, 0x50}
	cloudMAC = packet.MAC{2, 0, 0, 0, 1, 0x01}
	phoneMAC = packet.MAC{2, 0, 0, 0, 0, 0x77}
	attMAC   = packet.MAC{2, 0, 0, 0, 0, 0x03}
	gwIP     = netip.MustParseAddr("192.168.1.1")
	devIP    = netip.MustParseAddr("192.168.1.50")
	cloudIP  = netip.MustParseAddr("52.1.1.1")
	phoneIP  = netip.MustParseAddr("10.99.0.2")
	attIP    = netip.MustParseAddr("192.168.1.3")
)

// inspector is the gateway hook: it resolves frames to pipeline inputs,
// batches them through ProcessBatch (exercising the sharded engine), records
// the rendered decision stream, and returns the forwarding verdicts.
type inspector struct {
	eng   engine
	clock simclock.Clock
	epoch time.Time
	res   *Result
}

func (in *inspector) InspectBatch(frames [][]byte, now time.Time) []bool {
	allow := make([]bool, len(frames))
	pkts := make([]core.PacketIn, 0, len(frames))
	backrefs := make([]int, 0, len(frames))
	for i, f := range frames {
		p := packet.Decode(f, packet.CaptureInfo{Timestamp: now, Length: len(f), CaptureLength: len(f)})
		rec, ok := devices.RecordFromFrame(p, devIP, nil)
		if !ok {
			allow[i] = true
			continue
		}
		pkts = append(pkts, core.PacketIn{Device: "plug", Rec: rec})
		backrefs = append(backrefs, i)
	}
	// Decisions are stamped with the instant the proxy applied them (the
	// flush), not the instant the frames were queued — the same timeline the
	// durable WAL records, so recorded and replayed traces compare
	// byte-for-byte.
	at := in.clock.Now()
	for j, d := range in.eng.ProcessBatch(pkts) {
		allow[backrefs[j]] = d.Verdict == core.Allow
		in.res.Decisions = append(in.res.Decisions,
			fmt.Sprintf("+%07dms plug %s %s", at.Sub(in.epoch)/time.Millisecond, d.Verdict, d.Reason))
	}
	return allow
}

// courier retries attestation delivery over the faulty phone⇄proxy path:
// exponential backoff (500 ms doubling to a 4 s cap, at most 16 attempts per
// attestation), and after two consecutive ack timeouts it reports the
// channel down to the proxy — standing in for the keepalive prober a
// deployment would run — so pending-window expiries during the outage are
// excused. Any successfully decoded attestation marks the channel back up.
type courier struct {
	nw    *netsim.Network
	clock *simclock.VirtualClock
	eng   engine
	res   *Result
	end   time.Time

	b        packet.Builder
	nextID   uint32
	inflight map[uint32]*shipment
	strikes  int // consecutive ack timeouts across all shipments
}

type shipment struct {
	id       uint32
	payload  []byte
	attempts int
	timeout  time.Duration
	acked    bool
}

const (
	courierBaseTimeout = 500 * time.Millisecond
	courierMaxTimeout  = 4 * time.Second
	courierMaxAttempts = 16
	courierStrikeLimit = 2
)

func (c *courier) ship(payload []byte) {
	c.nextID++
	s := &shipment{id: c.nextID, payload: payload, timeout: courierBaseTimeout}
	c.inflight[s.id] = s
	c.res.AttestationsSent++
	c.send(s)
}

func (c *courier) send(s *shipment) {
	if s.acked || s.attempts >= courierMaxAttempts || c.clock.Now().After(c.end) {
		return
	}
	s.attempts++
	body := make([]byte, 4+len(s.payload))
	binary.BigEndian.PutUint32(body[:4], s.id)
	copy(body[4:], s.payload)
	c.nw.SendFrame(c.b.UDPPacket(packet.UDPSpec{
		SrcMAC: phoneMAC, DstMAC: attMAC, SrcIP: phoneIP, DstIP: attIP,
		SrcPort: 7843, DstPort: 7844, Payload: body,
	}))
	c.clock.AfterFunc(s.timeout, func(time.Time) { c.onTimeout(s) })
}

func (c *courier) onTimeout(s *shipment) {
	if s.acked {
		return
	}
	c.strikes++
	if c.strikes >= courierStrikeLimit {
		c.eng.AttestationChannelDown()
	}
	s.timeout *= 2
	if s.timeout > courierMaxTimeout {
		s.timeout = courierMaxTimeout
	}
	c.send(s)
}

func (c *courier) onAck(id uint32) {
	s := c.inflight[id]
	if s == nil || s.acked {
		return
	}
	s.acked = true
	c.strikes = 0
	c.res.AttestationsDelivered++
}

// Run executes the scenario to completion on a virtual clock and returns
// the collected result. Everything is deterministic in s.Seed.
func Run(s Scenario) (*Result, error) { return run(s, nil) }

// run is Run with an optional engine wrapper interposed between the
// scenario fabric and the proxy.
func run(s Scenario, wrap func(engine, *simclock.VirtualClock) engine) (*Result, error) {
	s.defaults()
	res := &Result{}
	clock := simclock.NewVirtual()
	reg := obs.NewRegistry()
	nw := netsim.New(clock, simclock.NewRNG(s.Seed))
	nw.SetObs(reg)
	epoch := clock.Now()
	bootEnd := epoch.Add(s.Bootstrap)
	runEnd := bootEnd.Add(s.Duration)

	// Pairing: proxy offers, phone accepts.
	proxyKS, err := keystore.New(mrand.New(mrand.NewSource(s.Seed + 100)))
	if err != nil {
		return nil, err
	}
	phoneKS, err := keystore.New(mrand.New(mrand.NewSource(s.Seed + 101)))
	if err != nil {
		return nil, err
	}
	offer, err := keystore.NewPairingOffer(proxyKS, mrand.New(mrand.NewSource(s.Seed+102)))
	if err != nil {
		return nil, err
	}
	if _, err := keystore.AcceptPairing(phoneKS, offer); err != nil {
		return nil, err
	}
	validator, err := sharedValidator()
	if err != nil {
		return nil, err
	}

	proxy := core.NewProxy(clock, proxyKS, validator, core.Config{
		Bootstrap:     s.Bootstrap,
		Shards:        s.Shards,
		Async:         s.Async,
		PendingWindow: s.PendingWindow,
		Relearn:       s.Relearn,
		Obs:           reg,
	})
	defer proxy.Close()
	if err := proxy.AddDevice(core.DeviceConfig{
		Name: "plug", Classifier: core.RuleClassifier{NotificationSize: 235}, GraceN: 1,
	}); err != nil {
		return nil, err
	}
	app := core.NewClientApp(clock, phoneKS)
	app.BindApp("com.plug.app", "plug")

	var eng engine = proxy
	if wrap != nil {
		eng = wrap(proxy, clock)
	}

	// Pre-screen one verified-human sensor window per interaction so runs
	// assert degradation behavior, not validator recall.
	gen := sensors.NewGenerator(simclock.NewRNG(s.Seed))
	windows := make([]sensors.Window, len(s.ManualAt))
	for i := range windows {
		windows[i] = gen.Human()
		for try := 0; try < 20 && !validator.ValidateWindow(windows[i]); try++ {
			windows[i] = gen.Human()
		}
	}

	// Topology: device and attestation endpoint on the LAN, phone on
	// mobile, vendor cloud behind the gateway.
	gw := netsim.NewGateway(nw, "router", gwMAC, gwIP)
	gw.ARP.Learn(devIP, devMAC)
	gw.SetInspector(&inspector{eng: eng, clock: clock, epoch: epoch, res: res}, 64)

	nw.Attach(&netsim.Node{Name: "plug", MAC: devMAC, IP: devIP, Loc: netsim.LocLAN,
		Recv: func(_ *netsim.Node, f []byte, _ time.Time) {
			if packet.Decode(f, packet.CaptureInfo{}).IPv4() != nil {
				res.DeviceFramesDelivered++
			}
		}})
	nw.Attach(&netsim.Node{Name: "cloud", MAC: cloudMAC, IP: cloudIP, Loc: netsim.LocCloudUS})

	cr := &courier{nw: nw, clock: clock, eng: eng, res: res, end: runEnd,
		inflight: make(map[uint32]*shipment)}
	var ackB packet.Builder
	nw.Attach(&netsim.Node{Name: "fiat-attest", MAC: attMAC, IP: attIP, Loc: netsim.LocLAN,
		Recv: func(_ *netsim.Node, f []byte, now time.Time) {
			p := packet.Decode(f, packet.CaptureInfo{Timestamp: now, Length: len(f), CaptureLength: len(f)})
			udp := p.UDP()
			if udp == nil || len(udp.LayerPayload()) < 4 {
				return
			}
			body := udp.LayerPayload()
			if _, err := eng.HandleAttestation(body[4:]); err != nil {
				// Corrupted or forged: no ack, the courier keeps trying
				// with the original bytes.
				return
			}
			nw.SendFrame(ackB.UDPPacket(packet.UDPSpec{
				SrcMAC: attMAC, DstMAC: phoneMAC, SrcIP: attIP, DstIP: phoneIP,
				SrcPort: 7844, DstPort: 7843, Payload: body[:4],
			}))
		}})
	nw.Attach(&netsim.Node{Name: "phone", MAC: phoneMAC, IP: phoneIP, Loc: netsim.LocMobile,
		Recv: func(_ *netsim.Node, f []byte, _ time.Time) {
			p := packet.Decode(f, packet.CaptureInfo{})
			udp := p.UDP()
			if udp == nil || len(udp.LayerPayload()) != 4 {
				return
			}
			cr.onAck(binary.BigEndian.Uint32(udp.LayerPayload()))
		}})

	// Faults on the phone⇄proxy path only: the scenario's point is that
	// attestation-channel weather must not condemn LAN traffic.
	if s.Burst != nil || s.CorruptProb > 0 {
		nw.SetFaultPlan(netsim.LocMobile, netsim.LocLAN, &netsim.FaultPlan{
			Burst: s.Burst, CorruptProb: s.CorruptProb,
		})
	}
	if s.PartitionFor > 0 {
		from := bootEnd.Add(s.PartitionAt)
		nw.Partition(netsim.LocMobile, netsim.LocLAN, from, from.Add(s.PartitionFor))
	}

	// Benign telemetry: the plug heartbeats to its cloud for the whole run.
	// After the optional drift shift the beat changes size and pace — the
	// same flow bucket, no longer arriving at any learned interval.
	framer := devices.NewFramer(devIP, devMAC, gwMAC)
	shiftAt := bootEnd.Add(s.ShiftAt)
	var heartbeat func(now time.Time)
	heartbeat = func(now time.Time) {
		if now.After(runEnd) {
			return
		}
		size, every := 128, s.HeartbeatEvery
		if s.ShiftAt > 0 && !now.Before(shiftAt) {
			size, every = 128+s.ShiftSize, s.ShiftEvery
		}
		nw.SendFrame(framer.Frame(flows.Record{
			Time: now, Size: size, Proto: "tcp", Dir: flows.DirOutbound,
			RemoteIP: cloudIP, LocalPort: 40000, RemotePort: 443,
			Category: flows.CategoryControl,
		}))
		clock.AfterFunc(every, heartbeat)
	}
	clock.AfterFunc(s.HeartbeatEvery, heartbeat)

	// Manual interactions: the touch at bootEnd+off, the attestation
	// AttestLag later, the command burst from the cloud ~1 s after the
	// touch (the Table 7 ordering).
	command := func(now time.Time, size int) []byte {
		f := framer.Frame(flows.Record{
			Time: now, Size: size, Proto: "tcp", Dir: flows.DirInbound,
			RemoteIP: cloudIP, LocalPort: 40000, RemotePort: 443,
			TCPFlags: 0x18, TLSVersion: 0x0303, Category: flows.CategoryManual,
		})
		copy(f[0:6], gwMAC[:])
		copy(f[6:12], cloudMAC[:])
		return f
	}
	for i, off := range s.ManualAt {
		w := windows[i]
		touch := s.Bootstrap + off
		clock.AfterFunc(touch+s.AttestLag, func(time.Time) {
			payload, err := app.Attest("com.plug.app", w)
			if err != nil {
				return
			}
			cr.ship(payload)
		})
		for j, lag := range []time.Duration{time.Second, 1100 * time.Millisecond, 1200 * time.Millisecond} {
			size := 235
			if j > 0 {
				size = 134
			}
			sz := size
			clock.AfterFunc(touch+lag, func(now time.Time) { nw.SendFrame(command(now, sz)) })
		}
	}

	// Housekeeping tick: flush the gateway batch and settle expired pending
	// windows once per virtual second, as cmd/fiat-proxy would.
	var tick func(now time.Time)
	tick = func(now time.Time) {
		gw.Flush()
		eng.SweepPending()
		if now.Before(runEnd) {
			clock.AfterFunc(time.Second, tick)
		}
	}
	clock.AfterFunc(time.Second, tick)

	clock.Run(runEnd)
	clock.AdvanceTo(runEnd)
	gw.Flush()

	// A wrapper that swapped the governed proxy out from under the run —
	// the durable restart harness kills and reopens it mid-scenario — tells
	// us where the surviving state lives; results must be read from there.
	resProxy := proxy
	if rp, ok := eng.(interface{ resultProxy() *core.Proxy }); ok {
		if p := rp.resultProxy(); p != nil {
			resProxy = p
		}
	}
	res.Log = resProxy.Log()
	res.Stats = resProxy.StatsSnapshot()
	res.Fault = nw.FaultStats()
	res.Locked = resProxy.Locked("plug")
	res.PendingLeft = resProxy.PendingDepth()
	res.Metrics = reg.Snapshot()
	if meta, ok := resProxy.ArtifactMeta("plug"); ok {
		res.Generation = meta.Generation
	}
	res.SwapPhase = resProxy.SwapPhase("plug")
	res.SwapMetrics = resProxy.SwapMetrics().Snapshot()
	return res, nil
}
