package chaos

import (
	"fmt"
	"time"

	"fiat/internal/core"
	"fiat/internal/durable"
	"fiat/internal/simclock"
)

// The restart harness runs a live scenario with the proxy governed by a
// durable.Manager inside the netsim fabric — heartbeats, couriers, and
// faults all active — and kills/reopens the gateway at scheduled instants
// mid-run. Unlike the crash matrix (crash.go), which replays a recorded op
// stream offline, this exercises recovery under load: the fabric keeps
// generating traffic across the restart, and the recovered proxy must carry
// the scenario forward exactly as an uninterrupted one would.

// DurableReport describes the durability activity of one RunDurable run.
type DurableReport struct {
	// Restarts counts completed kill/reopen cycles.
	Restarts int
	// Replayed counts WAL operations re-applied across all recoveries.
	Replayed int
	// Checkpoints counts periodic checkpoints taken by the sweep cadence
	// (the boot image excluded).
	Checkpoints int
	// State is the managed proxy's final EncodeState image.
	State []byte
}

// durEngine adapts a durable.Manager to the scenario engine interface and
// supports in-place restart. It is not transparent the way the recorder is:
// the run-local proxy is abandoned and a manager-governed twin (built by
// buildReplayProxy, so construction is bit-identical) takes its place; run()
// reads results through resultProxy. The first manager error is latched and
// turns subsequent operations into no-ops — RunDurable surfaces it after the
// scenario winds down.
type durEngine struct {
	dir    string
	build  durable.BuildProxy
	clock  *simclock.VirtualClock
	mgr    *durable.Manager
	every  int // checkpoint every N sweeps (0 = boot image only)
	sweeps int
	rep    *DurableReport
	err    error
}

func (e *durEngine) fail(err error) {
	if err != nil && e.err == nil {
		e.err = err
	}
}

func (e *durEngine) ProcessBatch(batch []core.PacketIn) []core.Decision {
	if e.err != nil {
		return nil
	}
	ds, err := e.mgr.ProcessBatch(batch)
	e.fail(err)
	return ds
}

func (e *durEngine) HandleAttestation(payload []byte) (bool, error) {
	if e.err != nil {
		return false, e.err
	}
	// The verdict-returning form: the courier fabric acks only decoded
	// payloads, and a durability failure reads as "no ack" (safe).
	return e.mgr.HandleAttestationVerdict(payload)
}

// SweepPending doubles as the maintenance tick, as cmd/fiat-proxy wires it:
// sweep, fsync/tick, and every e.every-th sweep a checkpoint. The swept
// count is not plumbed through the manager; the scenario loop discards it.
func (e *durEngine) SweepPending() int {
	if e.err != nil {
		return 0
	}
	e.fail(e.mgr.SweepPending())
	e.fail(e.mgr.Tick())
	e.sweeps++
	if e.every > 0 && e.sweeps%e.every == 0 && e.err == nil {
		e.fail(e.mgr.Checkpoint())
		if e.err == nil {
			e.rep.Checkpoints++
		}
	}
	return 0
}

func (e *durEngine) AttestationChannelDown() {
	if e.err == nil {
		e.fail(e.mgr.AttestationChannelDown())
	}
}

func (e *durEngine) AttestationChannelUp() {
	if e.err == nil {
		e.fail(e.mgr.AttestationChannelUp())
	}
}

func (e *durEngine) FlushEvent(device string) *core.Decision {
	if e.err != nil {
		return nil
	}
	d, err := e.mgr.FlushEvent(device)
	e.fail(err)
	return d
}

func (e *durEngine) resultProxy() *core.Proxy {
	if e.mgr == nil {
		return nil
	}
	return e.mgr.Proxy()
}

// restart models the gateway process dying and coming back: Abort drops the
// WAL handle without syncing or checkpointing (SyncAlways means nothing
// acknowledged is lost), and Open recovers snapshot+suffix onto a freshly
// built proxy. It runs inside the virtual event loop, so it can never
// interleave with a half-applied operation.
func (e *durEngine) restart(time.Time) {
	if e.err != nil {
		return
	}
	e.mgr.Abort()
	e.mgr.Proxy().Close()
	mgr, err := durable.Open(durable.Config{
		Dir: e.dir, Sync: durable.SyncAlways, SegmentBytes: replaySegBytes,
		OnReplay: func(*durable.Op, []core.Decision) { e.rep.Replayed++ },
	}, e.clock, e.build)
	if err != nil {
		e.fail(fmt.Errorf("restart recovery: %w", err))
		return
	}
	e.mgr = mgr
	e.rep.Restarts++
}

// RunDurable executes the scenario with the proxy under durable management,
// restarting it at each restartAt offset (measured from the end of the
// bootstrap window, like ManualAt). dir is the state directory the WAL and
// snapshots live in; checkpointEvery is in sweeps (one per virtual second).
// Restarts are expected to be invisible: the returned Result should match a
// plain Run of the same scenario on every decision-bearing surface.
func RunDurable(s Scenario, dir string, restartAt []time.Duration, checkpointEvery int) (*Result, *DurableReport, error) {
	s.defaults()
	rep := &DurableReport{}
	var de *durEngine
	res, err := run(s, func(_ engine, clock *simclock.VirtualClock) engine {
		de = &durEngine{dir: dir, build: buildReplayProxy(s), clock: clock, every: checkpointEvery, rep: rep}
		mgr, err := durable.Open(durable.Config{
			Dir: dir, Sync: durable.SyncAlways, SegmentBytes: replaySegBytes,
		}, clock, de.build)
		if err != nil {
			de.err = fmt.Errorf("open: %w", err)
			return de
		}
		de.mgr = mgr
		// wrap runs before the event loop starts, so AfterFunc offsets are
		// epoch-relative: bootstrap + off lands the restart mid-scenario.
		for _, off := range restartAt {
			clock.AfterFunc(s.Bootstrap+off, de.restart)
		}
		return de
	})
	if err != nil {
		return nil, nil, err
	}
	if de.err != nil {
		return nil, nil, de.err
	}
	rep.State = de.mgr.Proxy().EncodeState()
	de.mgr.Abort()
	de.mgr.Proxy().Close()
	return res, rep, nil
}
