package chaos

import (
	"strings"
	"testing"
	"time"
)

// TestMetricsReplayIdentical: a fixed-seed chaos run — faults, partition,
// retransmitting courier and all — must render the same metrics snapshot
// byte-for-byte on every replay. This is the scenario-level extension of the
// registry's determinism guarantee: every counter is fed from seeded draws on
// the virtual clock, and every duration observes zero.
func TestMetricsReplayIdentical(t *testing.T) {
	s := Scenario{
		Seed:          3,
		Shards:        4,
		Duration:      90 * time.Second,
		ManualAt:      []time.Duration{22 * time.Second, 60 * time.Second},
		PendingWindow: 25 * time.Second,
		Burst:         burst30(),
		CorruptProb:   0.05,
		PartitionAt:   20 * time.Second,
		PartitionFor:  10 * time.Second,
	}
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Fatalf("seeded chaos metrics snapshot is not reproducible:\n%s", diffSnapshots(a.Metrics, b.Metrics))
	}
	// The snapshot must actually show the run: pipeline decisions, fabric
	// fault activity, and a non-empty exposition.
	for _, want := range []string{
		"fiat_core_packets_total",
		"fiat_netsim_frames_total",
		"fiat_netsim_fault_burst_dropped_total",
		"fiat_core_pending_held_total",
	} {
		if !snapshotNonzero(a.Metrics, want) {
			t.Errorf("metrics snapshot has zero/missing %s:\n%s", want, a.Metrics)
		}
	}
}

// TestMetricsFaultFreeShardInvariant: with faults disabled, the sharded
// engine's scenario-level metrics snapshot must be byte-identical to the
// sequential engine's — the metrics-as-oracle form of
// TestFaultFreeShardedMatchesSequential.
func TestMetricsFaultFreeShardInvariant(t *testing.T) {
	base := Scenario{
		Seed:          7,
		Duration:      60 * time.Second,
		ManualAt:      []time.Duration{10 * time.Second, 40 * time.Second},
		PendingWindow: 25 * time.Second,
	}
	seq := base
	seq.Shards = 1
	sharded := base
	sharded.Shards = 4

	rSeq, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	rSh, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if rSeq.Metrics != rSh.Metrics {
		t.Fatalf("metrics snapshots diverge across shard counts:\n%s", diffSnapshots(rSh.Metrics, rSeq.Metrics))
	}
	if !snapshotNonzero(rSeq.Metrics, `fiat_core_decisions_total{reason="manual-with-human"}`) {
		t.Errorf("fault-free run shows no HumanOK decisions:\n%s", rSeq.Metrics)
	}
}

// snapshotNonzero reports whether the snapshot has a sample for name with a
// value other than 0.
func snapshotNonzero(snapshot, name string) bool {
	for _, line := range strings.Split(snapshot, "\n") {
		if strings.HasPrefix(line, name+" ") && !strings.HasSuffix(line, " 0") {
			return true
		}
	}
	return false
}

// diffSnapshots renders the first differing line of two snapshots.
func diffSnapshots(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return "got:  " + g[i] + "\nwant: " + w[i]
		}
	}
	return "length mismatch"
}
