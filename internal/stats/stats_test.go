package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Std(xs) != 2 {
		t.Fatalf("Std = %v", Std(xs))
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty input not zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 25: 2, 50: 3, 75: 4, 100: 5}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Fatalf("P%v = %v, want %v", p, got, want)
		}
	}
	if got := Percentile(xs, 10); math.Abs(got-1.4) > 1e-12 {
		t.Fatalf("P10 = %v, want 1.4 (interpolated)", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.At(0) != 0 {
		t.Fatalf("At(0) = %v", c.At(0))
	}
	if c.At(2) != 0.5 {
		t.Fatalf("At(2) = %v", c.At(2))
	}
	if c.At(10) != 1 {
		t.Fatalf("At(10) = %v", c.At(10))
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		c := NewCDF(raw)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Fatalf("Quantile(1) = %v", got)
	}
}

func TestRenderCDF(t *testing.T) {
	var sb strings.Builder
	RenderCDF(&sb, []Series{
		{Label: "PortLess", Values: []float64{0.9, 0.95, 0.99}},
		{Label: "Classic", Values: []float64{0.5, 0.6, 0.7}},
	}, 0, 1, 40, "predictable fraction")
	out := sb.String()
	if !strings.Contains(out, "PortLess") || !strings.Contains(out, "Classic") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "p50=") {
		t.Fatalf("quantile key missing:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := &Table{Header: []string{"Device", "Precision", "Recall"}}
	tb.Add("Echo Dot 4", 0.942, 0.98)
	tb.Add("WyzeCam", 1.0, 1.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Device") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "Echo Dot 4") || !strings.Contains(lines[3], "WyzeCam") {
		t.Fatalf("rows wrong:\n%s", out)
	}
	// Columns align: "Precision" starts at the same offset in all rows.
	idx := strings.Index(lines[0], "Precision")
	if !strings.HasPrefix(lines[2][idx:], "0.942") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestFormatPct(t *testing.T) {
	if FormatPct(0.057) != "5.7%" {
		t.Fatalf("FormatPct = %q", FormatPct(0.057))
	}
}
