// Package stats provides the small statistics and text-rendering toolkit
// the evaluation harness uses to print paper-style tables and CDF figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation; input need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDF is an empirical distribution over sorted values.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples.
func NewCDF(xs []float64) CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// At returns P(X <= x).
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the value at cumulative probability q in [0,1].
func (c CDF) Quantile(q float64) float64 {
	return Percentile(c.sorted, q*100)
}

// Len returns the sample count.
func (c CDF) Len() int { return len(c.sorted) }

// Series pairs a label with samples, for multi-line CDF figures.
type Series struct {
	Label  string
	Values []float64
}

// RenderCDF prints an ASCII CDF chart of the series over [xmin, xmax] with
// the given number of columns — the harness's stand-in for the paper's
// figure panels. Each row is one series; each cell is the CDF value at that
// x position rendered as a density glyph.
func RenderCDF(sb *strings.Builder, series []Series, xmin, xmax float64, cols int, xlabel string) {
	if cols < 10 {
		cols = 10
	}
	glyphs := []rune(" .:-=+*#%@")
	fmt.Fprintf(sb, "  CDF vs %s  [%.3g .. %.3g]\n", xlabel, xmin, xmax)
	for _, s := range series {
		cdf := NewCDF(s.Values)
		row := make([]rune, cols)
		for i := 0; i < cols; i++ {
			x := xmin + (xmax-xmin)*float64(i)/float64(cols-1)
			v := cdf.At(x)
			gi := int(v * float64(len(glyphs)-1))
			if gi < 0 {
				gi = 0
			}
			if gi >= len(glyphs) {
				gi = len(glyphs) - 1
			}
			row[i] = glyphs[gi]
		}
		fmt.Fprintf(sb, "  %-24s |%s|\n", s.Label, string(row))
	}
	fmt.Fprintf(sb, "  %-24s  p10=%s p50=%s p90=%s\n", "(quantile key)", "10%", "50%", "90%")
	for _, s := range series {
		cdf := NewCDF(s.Values)
		fmt.Fprintf(sb, "  %-24s  p10=%.3g p50=%.3g p90=%.3g\n",
			s.Label, cdf.Quantile(0.10), cdf.Quantile(0.50), cdf.Quantile(0.90))
	}
}

// Table renders aligned text tables in the style of the paper's tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row, stringifying each cell.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// FormatPct renders a fraction as a percentage string.
func FormatPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
