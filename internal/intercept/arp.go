// Package intercept implements the traffic-interception substrate the FIAT
// proxy deploys on (§5.4 "Traffic Intercept"): an ARP table with an
// ARP-spoofing MITM (how the paper's Raspberry Pi inserts itself without
// touching the home gateway), an NFQUEUE-style verdict queue (the
// iptables/libnetfilter_queue pattern: the kernel delays forwarding, a
// userspace handler returns accept/drop), and the L2 forwarder that
// re-addresses accepted frames to their true next hop.
package intercept

import (
	"net/netip"
	"sync"

	"fiat/internal/packet"
)

// ARPTable is one host's IP-to-MAC cache. ARP is stateless and unauthenti-
// cated: the newest reply wins, which is exactly what spoofing exploits.
type ARPTable struct {
	mu      sync.RWMutex
	entries map[netip.Addr]packet.MAC
}

// NewARPTable returns an empty table.
func NewARPTable() *ARPTable {
	return &ARPTable{entries: make(map[netip.Addr]packet.MAC)}
}

// Learn records a binding (from any ARP packet's sender fields).
func (t *ARPTable) Learn(ip netip.Addr, mac packet.MAC) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[ip] = mac
}

// Observe updates the table from a decoded ARP frame.
func (t *ARPTable) Observe(p *packet.Packet) {
	if a := p.ARP(); a != nil {
		t.Learn(a.SenderIP, a.SenderMAC)
	}
}

// Lookup resolves an IP.
func (t *ARPTable) Lookup(ip netip.Addr) (packet.MAC, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	m, ok := t.entries[ip]
	return m, ok
}

// Len reports the entry count.
func (t *ARPTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Spoofer builds the gratuitous ARP replies that poison victims' caches so
// their traffic transits the proxy. Two directions are poisoned per victim:
// the victim is told "the gateway is at the proxy's MAC", and the gateway is
// told "the victim is at the proxy's MAC" — full-duplex interception.
type Spoofer struct {
	ProxyMAC  packet.MAC
	GatewayIP netip.Addr
	builder   packet.Builder
}

// PoisonFrames returns the two spoofed ARP replies for one victim. Send
// them periodically (real tools re-announce every few seconds; ARP caches
// expire).
func (s *Spoofer) PoisonFrames(victimIP netip.Addr, victimMAC packet.MAC, gatewayMAC packet.MAC) [][]byte {
	toVictim := s.builder.ARPPacket(packet.ARPReply, s.ProxyMAC, s.GatewayIP, victimMAC, victimIP)
	toGateway := s.builder.ARPPacket(packet.ARPReply, s.ProxyMAC, victimIP, gatewayMAC, s.GatewayIP)
	return [][]byte{toVictim, toGateway}
}

// RestoreFrames returns the correcting replies that undo the poisoning when
// the proxy shuts down cleanly.
func (s *Spoofer) RestoreFrames(victimIP netip.Addr, victimMAC, gatewayMAC packet.MAC) [][]byte {
	toVictim := s.builder.ARPPacket(packet.ARPReply, gatewayMAC, s.GatewayIP, victimMAC, victimIP)
	toGateway := s.builder.ARPPacket(packet.ARPReply, victimMAC, victimIP, gatewayMAC, s.GatewayIP)
	return [][]byte{toVictim, toGateway}
}

// IsPoisoned reports whether a victim's table currently routes the gateway
// IP to the proxy.
func (s *Spoofer) IsPoisoned(victim *ARPTable) bool {
	mac, ok := victim.Lookup(s.GatewayIP)
	return ok && mac == s.ProxyMAC
}
