package intercept

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"fiat/internal/packet"
)

var (
	gwIP     = netip.MustParseAddr("192.168.1.1")
	devIP    = netip.MustParseAddr("192.168.1.50")
	cloudIP  = netip.MustParseAddr("52.1.2.3")
	gwMAC    = packet.MAC{2, 0, 0, 0, 0, 0x01}
	devMAC   = packet.MAC{2, 0, 0, 0, 0, 0x50}
	proxyMAC = packet.MAC{2, 0, 0, 0, 0, 0xff}
)

func TestARPTableLearnAndLookup(t *testing.T) {
	tbl := NewARPTable()
	tbl.Learn(gwIP, gwMAC)
	m, ok := tbl.Lookup(gwIP)
	if !ok || m != gwMAC {
		t.Fatalf("Lookup = %v, %v", m, ok)
	}
	if _, ok := tbl.Lookup(devIP); ok {
		t.Fatal("unknown IP resolved")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestARPTableObserve(t *testing.T) {
	tbl := NewARPTable()
	var b packet.Builder
	frame := b.ARPPacket(packet.ARPReply, devMAC, devIP, gwMAC, gwIP)
	tbl.Observe(packet.Decode(frame, packet.CaptureInfo{}))
	if m, ok := tbl.Lookup(devIP); !ok || m != devMAC {
		t.Fatalf("Observe did not learn sender binding: %v %v", m, ok)
	}
}

func TestNewestReplyWins(t *testing.T) {
	tbl := NewARPTable()
	tbl.Learn(gwIP, gwMAC)
	tbl.Learn(gwIP, proxyMAC) // the spoof
	if m, _ := tbl.Lookup(gwIP); m != proxyMAC {
		t.Fatalf("Lookup = %v, want the newest binding", m)
	}
}

func TestSpooferPoisonsBothDirections(t *testing.T) {
	s := &Spoofer{ProxyMAC: proxyMAC, GatewayIP: gwIP}
	frames := s.PoisonFrames(devIP, devMAC, gwMAC)
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	victim := NewARPTable()
	gateway := NewARPTable()
	victim.Observe(packet.Decode(frames[0], packet.CaptureInfo{}))
	gateway.Observe(packet.Decode(frames[1], packet.CaptureInfo{}))
	if !s.IsPoisoned(victim) {
		t.Fatal("victim not poisoned")
	}
	if m, _ := gateway.Lookup(devIP); m != proxyMAC {
		t.Fatal("gateway not poisoned")
	}
}

func TestSpooferRestore(t *testing.T) {
	s := &Spoofer{ProxyMAC: proxyMAC, GatewayIP: gwIP}
	victim := NewARPTable()
	for _, f := range s.PoisonFrames(devIP, devMAC, gwMAC) {
		victim.Observe(packet.Decode(f, packet.CaptureInfo{}))
	}
	for _, f := range s.RestoreFrames(devIP, devMAC, gwMAC) {
		victim.Observe(packet.Decode(f, packet.CaptureInfo{}))
	}
	if s.IsPoisoned(victim) {
		t.Fatal("victim still poisoned after restore")
	}
	if m, _ := victim.Lookup(gwIP); m != gwMAC {
		t.Fatal("gateway binding not restored")
	}
}

func mkTCPFrame(payload []byte) []byte {
	var b packet.Builder
	return b.TCPPacket(packet.TCPSpec{
		SrcMAC: devMAC, DstMAC: proxyMAC, SrcIP: devIP, DstIP: cloudIP,
		SrcPort: 40000, DstPort: 443, Flags: packet.TCPFlagACK, Payload: payload,
	})
}

func TestQueueVerdictFlow(t *testing.T) {
	q := NewQueue(8, true)
	go q.Run(func(p *packet.Packet) Verdict {
		if p.TCP() != nil && len(p.TCP().LayerPayload()) > 3 {
			return Drop
		}
		return Accept
	})
	defer q.Close()

	small, err := q.Enqueue(packet.Decode(mkTCPFrame([]byte("ok")), packet.CaptureInfo{}))
	if err != nil {
		t.Fatal(err)
	}
	if v := <-small; v != Accept {
		t.Fatalf("small packet verdict = %v", v)
	}
	big, err := q.Enqueue(packet.Decode(mkTCPFrame([]byte("attack-payload")), packet.CaptureInfo{}))
	if err != nil {
		t.Fatal(err)
	}
	if v := <-big; v != Drop {
		t.Fatalf("big packet verdict = %v", v)
	}
	time.Sleep(5 * time.Millisecond) // let stat goroutines settle
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.Stats.Accepted != 1 || q.Stats.Dropped != 1 || q.Stats.Enqueued != 2 {
		t.Fatalf("stats = %+v", q.Stats)
	}
}

func TestQueueOverflowFailOpen(t *testing.T) {
	q := NewQueue(1, true) // no Run loop: the queue backs up
	p := packet.Decode(mkTCPFrame(nil), packet.CaptureInfo{})
	if _, err := q.Enqueue(p); err != nil {
		t.Fatal(err)
	}
	ch, err := q.Enqueue(p) // overflows
	if err != nil {
		t.Fatal(err)
	}
	if v := <-ch; v != Accept {
		t.Fatalf("fail-open overflow verdict = %v", v)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.Stats.Bypassed != 1 {
		t.Fatalf("bypassed = %d", q.Stats.Bypassed)
	}
}

func TestQueueOverflowFailClosed(t *testing.T) {
	q := NewQueue(1, false)
	p := packet.Decode(mkTCPFrame(nil), packet.CaptureInfo{})
	if _, err := q.Enqueue(p); err != nil {
		t.Fatal(err)
	}
	ch, _ := q.Enqueue(p)
	if v := <-ch; v != Drop {
		t.Fatalf("fail-closed overflow verdict = %v", v)
	}
}

func TestQueueCloseRejectsEnqueue(t *testing.T) {
	q := NewQueue(4, true)
	q.Close()
	if _, err := q.Enqueue(packet.Decode(mkTCPFrame(nil), packet.CaptureInfo{})); err != ErrQueueClosed {
		t.Fatalf("err = %v, want ErrQueueClosed", err)
	}
	q.Close() // idempotent
}

func TestQueueConcurrentEnqueue(t *testing.T) {
	q := NewQueue(256, true)
	go q.Run(func(*packet.Packet) Verdict { return Accept })
	defer q.Close()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, err := q.Enqueue(packet.Decode(mkTCPFrame(nil), packet.CaptureInfo{}))
			if err != nil {
				t.Error(err)
				return
			}
			<-ch
		}()
	}
	wg.Wait()
}

func TestItemSetVerdictOnce(t *testing.T) {
	it := &Item{verdict: make(chan Verdict, 1)}
	it.SetVerdict(Drop)
	it.SetVerdict(Accept) // ignored, must not block or panic
	if v := <-it.verdict; v != Drop {
		t.Fatalf("verdict = %v", v)
	}
}

func TestForwarderRewrite(t *testing.T) {
	tbl := NewARPTable()
	tbl.Learn(cloudIP, gwMAC) // next hop for WAN destinations is the gateway
	f := &Forwarder{ProxyMAC: proxyMAC, ARP: tbl}
	frame := mkTCPFrame([]byte("data"))
	out, ok := f.Rewrite(frame)
	if !ok {
		t.Fatal("rewrite failed")
	}
	p := packet.Decode(out, packet.CaptureInfo{})
	eth := p.Ethernet()
	if eth.DstMAC != gwMAC || eth.SrcMAC != proxyMAC {
		t.Fatalf("rewritten MACs = %v -> %v", eth.SrcMAC, eth.DstMAC)
	}
	// Original frame untouched.
	orig := packet.Decode(frame, packet.CaptureInfo{})
	if orig.Ethernet().SrcMAC != devMAC {
		t.Fatal("original frame mutated")
	}
	// Payload intact and checksums still valid (L2-only rewrite).
	if string(p.TCP().LayerPayload()) != "data" {
		t.Fatal("payload changed")
	}
	if !packet.VerifyTransportChecksum(p) {
		t.Fatal("checksum broken by rewrite")
	}
}

func TestForwarderUnresolvable(t *testing.T) {
	f := &Forwarder{ProxyMAC: proxyMAC, ARP: NewARPTable()}
	if _, ok := f.Rewrite(mkTCPFrame(nil)); ok {
		t.Fatal("rewrite succeeded without ARP entry")
	}
	var b packet.Builder
	arpFrame := b.ARPPacket(packet.ARPRequest, devMAC, devIP, packet.MAC{}, gwIP)
	if _, ok := f.Rewrite(arpFrame); ok {
		t.Fatal("non-IPv4 frame rewritten")
	}
}
