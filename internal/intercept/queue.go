package intercept

import (
	"errors"
	"sync"

	"fiat/internal/packet"
)

// Verdict is the userspace decision for one queued packet.
type Verdict uint8

// Verdicts, mirroring NF_ACCEPT / NF_DROP.
const (
	Accept Verdict = iota
	Drop
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v == Drop {
		return "drop"
	}
	return "accept"
}

// ErrQueueClosed is returned by Enqueue after Close.
var ErrQueueClosed = errors.New("intercept: queue closed")

// Item is one packet awaiting a verdict.
type Item struct {
	Packet  *packet.Packet
	verdict chan Verdict
	once    sync.Once
}

// SetVerdict releases the packet with the decision. Safe to call once;
// later calls are ignored.
func (it *Item) SetVerdict(v Verdict) {
	it.once.Do(func() { it.verdict <- v })
}

// Queue is the NFQUEUE analogue: forwarding of each packet is delayed until
// a handler issues its verdict. When the queue overflows, packets bypass
// with the configured FailOpen policy, matching the common iptables
// deployment choice (queue-bypass accepts rather than breaking the network).
type Queue struct {
	items    chan *Item
	failOpen bool

	mu     sync.Mutex
	closed bool

	// Stats counts queue events.
	Stats struct {
		Enqueued, Accepted, Dropped, Bypassed int
	}
}

// NewQueue builds a queue of the given capacity. failOpen selects the
// overflow policy: true accepts excess packets unexamined, false drops them.
func NewQueue(capacity int, failOpen bool) *Queue {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Queue{items: make(chan *Item, capacity), failOpen: failOpen}
}

// Enqueue submits a packet and returns a channel delivering its verdict.
// The caller (the simulated kernel path) must wait on the channel before
// forwarding — that wait is the latency FIAT adds to IoT traffic.
func (q *Queue) Enqueue(p *packet.Packet) (<-chan Verdict, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrQueueClosed
	}
	q.Stats.Enqueued++
	q.mu.Unlock()
	it := &Item{Packet: p, verdict: make(chan Verdict, 1)}
	select {
	case q.items <- it:
		return q.wrapVerdict(it.verdict), nil
	default:
		// Queue full: bypass.
		q.mu.Lock()
		q.Stats.Bypassed++
		q.mu.Unlock()
		ch := make(chan Verdict, 1)
		if q.failOpen {
			ch <- Accept
		} else {
			ch <- Drop
		}
		return ch, nil
	}
}

func (q *Queue) wrapVerdict(in <-chan Verdict) <-chan Verdict {
	out := make(chan Verdict, 1)
	go func() {
		v := <-in
		q.mu.Lock()
		if v == Accept {
			q.Stats.Accepted++
		} else {
			q.Stats.Dropped++
		}
		q.mu.Unlock()
		out <- v
	}()
	return out
}

// Run consumes queued packets with the handler until Close. Run it on its
// own goroutine; it is the "userspace Linux application" of §5.4.
func (q *Queue) Run(handler func(*packet.Packet) Verdict) {
	for it := range q.items {
		it.SetVerdict(handler(it.Packet))
	}
}

// Close stops the queue. Packets already queued still receive verdicts from
// a draining Run; Enqueue afterwards fails.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.items)
	}
}

// Forwarder re-addresses accepted frames to their true L2 next hop. The
// proxy receives frames addressed to its own MAC (thanks to the spoofing)
// and must rewrite the Ethernet header toward the real destination before
// putting them back on the wire.
type Forwarder struct {
	ProxyMAC packet.MAC
	ARP      *ARPTable
}

// Rewrite returns a copy of the frame with src MAC set to the proxy and dst
// MAC resolved from the IP destination. It returns false when the
// destination is unresolvable or the frame is not IPv4.
func (f *Forwarder) Rewrite(frame []byte) ([]byte, bool) {
	p := packet.Decode(frame, packet.CaptureInfo{})
	ip := p.IPv4()
	if ip == nil {
		return nil, false
	}
	dstMAC, ok := f.ARP.Lookup(ip.DstIP)
	if !ok {
		return nil, false
	}
	out := make([]byte, len(frame))
	copy(out, frame)
	copy(out[0:6], dstMAC[:])
	copy(out[6:12], f.ProxyMAC[:])
	return out, true
}
