package dataset

import (
	"testing"
	"time"

	"fiat/internal/features"
	"fiat/internal/flows"
	"fiat/internal/ml"
	"fiat/internal/netsim"
	"fiat/internal/stats"
)

func TestTestbedLayout(t *testing.T) {
	traces := Testbed(TestbedOptions{Days: 1, Seed: 1})
	// 4 NJ devices x 3 locations + 6 IL devices x 1 location = 18 traces.
	if len(traces) != 18 {
		t.Fatalf("traces = %d, want 18", len(traces))
	}
	names := map[string]bool{}
	for _, tr := range traces {
		if names[tr.Name] {
			t.Fatalf("duplicate trace %q", tr.Name)
		}
		names[tr.Name] = true
		if len(tr.Records) == 0 {
			t.Fatalf("%s: empty trace", tr.Name)
		}
	}
	for _, want := range []string{"EchoDot4-US", "EchoDot4-JP", "EchoDot4-DE", "Home-US", "WyzeCam-JP"} {
		if !names[want] {
			t.Fatalf("missing trace %q", want)
		}
	}
	if names["Home-JP"] {
		t.Fatal("IL devices must not have VPN locations")
	}
}

func TestTestbedDeterministic(t *testing.T) {
	a := Testbed(TestbedOptions{Days: 1, Seed: 5})
	b := Testbed(TestbedOptions{Days: 1, Seed: 5})
	if len(a) != len(b) {
		t.Fatal("trace counts differ")
	}
	for i := range a {
		if len(a[i].Records) != len(b[i].Records) {
			t.Fatalf("%s: lengths differ", a[i].Name)
		}
	}
}

func TestFindTrace(t *testing.T) {
	traces := Testbed(TestbedOptions{Days: 1, Seed: 1})
	tr, ok := FindTrace(traces, "Blink-US")
	if !ok || tr.Device.Name != "Blink" {
		t.Fatalf("FindTrace = %v, %v", tr, ok)
	}
	if _, ok := FindTrace(traces, "nope"); ok {
		t.Fatal("found nonexistent trace")
	}
}

func TestYourThingsPredictabilityCDF(t *testing.T) {
	yt := YourThings(1, 30, 12*time.Hour)
	if len(yt) != 30 {
		t.Fatalf("devices = %d", len(yt))
	}
	var pl, cl []float64
	for _, tr := range yt {
		pl = append(pl, tr.Analyze(flows.ModePortLess).Fraction())
		cl = append(cl, tr.Analyze(flows.ModeClassic).Fraction())
	}
	// Fig 1(b): "more than 80% of the traffic for 80% of the devices is
	// predictable, assuming the PortLess approach".
	p20 := stats.Percentile(pl, 20)
	if p20 < 0.72 || p20 > 0.92 {
		t.Fatalf("PortLess 20th percentile = %.3f, want ~0.80", p20)
	}
	// PortLess dominates Classic in the population.
	if stats.Mean(pl) <= stats.Mean(cl) {
		t.Fatalf("PortLess mean %.3f <= Classic mean %.3f", stats.Mean(pl), stats.Mean(cl))
	}
}

func TestYourThingsUnlabeled(t *testing.T) {
	yt := YourThings(2, 3, time.Hour)
	for _, tr := range yt {
		for _, r := range tr.Records {
			if r.Category != flows.CategoryUnknown {
				t.Fatal("YourThings records must be unlabeled")
			}
		}
	}
}

func TestMonIoTrIdleMorePredictableThanActive(t *testing.T) {
	idle, active := MonIoTr(3, 15, 6*time.Hour)
	if len(idle) != 15 || len(active) != 15 {
		t.Fatalf("counts = %d, %d", len(idle), len(active))
	}
	var iSum, aSum float64
	for i := range idle {
		iSum += idle[i].Analyze(flows.ModePortLess).Fraction()
		aSum += active[i].Analyze(flows.ModePortLess).Fraction()
	}
	if iSum <= aSum {
		t.Fatalf("idle mean %.3f <= active mean %.3f; interactions must reduce predictability", iSum/15, aSum/15)
	}
}

func TestInspectorAggregateShape(t *testing.T) {
	yt := YourThings(4, 1, time.Hour)
	recs := yt[0].Records
	agg := InspectorAggregate(recs, 0)
	if len(agg) == 0 || len(agg) > len(recs) {
		t.Fatalf("aggregate count %d vs %d packets", len(agg), len(recs))
	}
	var rawBytes, aggBytes int
	for _, r := range recs {
		rawBytes += r.Size
	}
	for _, r := range agg {
		aggBytes += r.Size
		if r.LocalPort != 0 || r.RemotePort != 0 {
			t.Fatal("aggregates must not carry ports")
		}
		if r.Time.UnixNano()%int64(5*time.Second) != 0 {
			t.Fatalf("aggregate timestamp %v not on the 5s grid", r.Time)
		}
	}
	if rawBytes != aggBytes {
		t.Fatalf("bytes not conserved: %d vs %d", rawBytes, aggBytes)
	}
	for i := 1; i < len(agg); i++ {
		if agg[i].Time.Before(agg[i-1].Time) {
			t.Fatal("aggregates not sorted")
		}
	}
}

func TestInspectorMedianAbove85(t *testing.T) {
	yt := YourThings(5, 16, 8*time.Hour)
	var fr []float64
	for _, tr := range yt {
		agg := InspectorAggregate(tr.Records, 0)
		a := flows.NewAnalyzer(flows.ModePortLess)
		a.ObserveAll(agg)
		fr = append(fr, a.Fraction())
	}
	// §2.2: "half of the devices have a predictability greater than 85%
	// given PortLess definition".
	if med := stats.Percentile(fr, 50); med < 0.85 {
		t.Fatalf("Inspector median predictability = %.3f, want > 0.85", med)
	}
}

func TestRegisteredDomain(t *testing.T) {
	cases := map[string]string{
		"f3.dev001.vendor.example": "dev001.vendor.example",
		"dev001.vendor.example":    "dev001.vendor.example",
		"a.b":                      "a.b",
	}
	for in, want := range cases {
		if got := registeredDomain(in); got != want {
			t.Fatalf("registeredDomain(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTestbedEventsClassifiable(t *testing.T) {
	// End-to-end sanity for the §4 pipeline: a low-confusion device's
	// events must be classifiable with BernoulliNB at Table 3 levels.
	traces := Testbed(TestbedOptions{Days: 7, ManualPerDay: 5, Seed: 7})
	tr, _ := FindTrace(traces, "HomeMini-US")
	evs := tr.Events(flows.ModePortLess)
	if len(evs) < 100 {
		t.Fatalf("only %d events", len(evs))
	}
	X := features.ExtractAll(evs)
	y := features.MulticlassLabels(evs)
	res, err := ml.CrossValidate(func() ml.Classifier { return &ml.BernoulliNB{} }, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	prf := ml.PooledPRF(res, 2)
	if prf.F1 < 0.8 {
		t.Fatalf("HomeMini manual F1 = %.3f, want >= 0.8 (paper: 0.91)", prf.F1)
	}
	// And the messy device must be worse (the Table 3 spread).
	trHome, _ := FindTrace(traces, "Home-US")
	evsHome := trHome.Events(flows.ModePortLess)
	resHome, err := ml.CrossValidate(func() ml.Classifier { return &ml.BernoulliNB{} },
		features.ExtractAll(evsHome), features.MulticlassLabels(evsHome), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if home := ml.PooledPRF(resHome, 2); home.F1 >= prf.F1 {
		t.Fatalf("Home F1 %.3f >= HomeMini F1 %.3f; Home must be the hard device", home.F1, prf.F1)
	}
}

func TestNJLocationsCoverVPNs(t *testing.T) {
	if len(NJLocations) != 3 {
		t.Fatalf("NJ locations = %v", NJLocations)
	}
	seen := map[netsim.Location]bool{}
	for _, l := range NJLocations {
		seen[l] = true
	}
	if !seen[netsim.LocCloudUS] || !seen[netsim.LocCloudDE] || !seen[netsim.LocCloudJP] {
		t.Fatalf("NJ locations = %v", NJLocations)
	}
}
