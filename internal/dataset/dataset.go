// Package dataset builds the traffic corpora the evaluation runs on: the
// NJ/IL testbed traces (Table 1 devices, with the VPN locations), and
// synthetic stand-ins for the public datasets the paper analyzes in §2 —
// YourThings (65 devices, continuous capture), Mon(IoT)r (idle vs active
// splits), and IoT Inspector (5-second aggregates). The stand-ins
// reproduce the structural properties Figures 1(b)/1(c) measure: a
// population of devices whose traffic is dominated by periodic flows with
// recurring intervals under 10 minutes, plus heavier unpredictable tails
// for a minority of devices.
package dataset

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fiat/internal/devices"
	"fiat/internal/events"
	"fiat/internal/flows"
	"fiat/internal/netsim"
	"fiat/internal/simclock"
)

// Trace is one device's labeled capture.
type Trace struct {
	Name    string
	Device  *devices.Profile
	Loc     netsim.Location
	Records []flows.Record
}

// Analyze runs the predictability analysis over the trace.
func (t *Trace) Analyze(mode flows.KeyMode) *flows.Analyzer {
	a := flows.NewAnalyzer(mode)
	a.ObserveAll(t.Records)
	return a
}

// Events extracts the unpredictable events under the given mode.
func (t *Trace) Events(mode flows.KeyMode) []*events.Event {
	return events.FromAnalyzer(t.Analyze(mode), 0)
}

// TestbedOptions scales the testbed corpus.
type TestbedOptions struct {
	// Days is the capture length (the paper: ~2 weeks).
	Days int
	// ManualPerDay is the human-interaction rate for complex devices.
	ManualPerDay float64
	// Seed drives all generation.
	Seed int64
}

// NJLocations are the VPN exits exercised from the controlled NJ site.
var NJLocations = []netsim.Location{netsim.LocCloudUS, netsim.LocCloudJP, netsim.LocCloudDE}

// Testbed builds the full §3 corpus: NJ devices at three (VPN) locations,
// IL devices at the US location, routines enabled everywhere.
func Testbed(opt TestbedOptions) []Trace {
	if opt.Days <= 0 {
		opt.Days = 14
	}
	if opt.ManualPerDay <= 0 {
		opt.ManualPerDay = 4
	}
	root := simclock.NewRNG(opt.Seed)
	var out []Trace
	for _, p := range devices.StandardTestbed() {
		locs := []netsim.Location{netsim.LocCloudUS}
		if p.Site == "NJ" {
			locs = NJLocations
		}
		for _, loc := range locs {
			rng := root.Fork(p.Name + "/" + string(loc))
			manual := opt.ManualPerDay
			if p.Name == "E4" {
				manual = opt.ManualPerDay / 3 // the least-used device (§3.1)
			}
			recs := p.Generate(rng, devices.TraceOptions{
				Start:        simclock.Epoch,
				Duration:     time.Duration(opt.Days) * 24 * time.Hour,
				Loc:          loc,
				ManualPerDay: manual,
				Routines:     true,
			})
			out = append(out, Trace{
				Name:    traceName(p.Name, loc),
				Device:  p,
				Loc:     loc,
				Records: recs,
			})
		}
	}
	return out
}

func traceName(dev string, loc netsim.Location) string {
	switch loc {
	case netsim.LocCloudJP:
		return dev + "-JP"
	case netsim.LocCloudDE:
		return dev + "-DE"
	default:
		return dev + "-US"
	}
}

// FindTrace returns the trace with the given name.
func FindTrace(traces []Trace, name string) (*Trace, bool) {
	for i := range traces {
		if traces[i].Name == name {
			return &traces[i], true
		}
	}
	return nil, false
}

// syntheticProfile builds a random YourThings/Mon(IoT)r-style device: a
// handful of periodic flows plus an unpredictable-event tail whose weight
// varies across the population, yielding the CDF spread of Fig 1(b).
func syntheticProfile(rng *simclock.RNG, idx int) *devices.Profile {
	nFlows := rng.IntBetween(2, 8)
	ctrl := make([]devices.PeriodicFlow, 0, nFlows)
	for f := 0; f < nFlows; f++ {
		period := time.Duration(rng.IntBetween(5, 300)) * time.Second
		proto := "tcp"
		var tls uint16 = 0x0303
		if rng.Bernoulli(0.3) {
			proto, tls = "udp", 0
		}
		dir := flows.DirOutbound
		if rng.Bernoulli(0.4) {
			dir = flows.DirInbound
		}
		ctrl = append(ctrl, devices.PeriodicFlow{
			DomainSuffix: fmt.Sprintf("f%d.", f),
			Period:       period,
			Size:         rng.IntBetween(60, 1400),
			Proto:        proto,
			Dir:          dir,
			TLS:          tls,
			FreshPort:    proto == "udp" && rng.Bernoulli(0.5),
		})
	}
	// Roughly half the population hosts two services behind one name
	// (same domain, proto, direction; different sizes/periods). Packet-
	// level analysis keeps them apart via size; IoT Inspector's 5-second
	// aggregation merges them into windows with irregular byte sums — the
	// §2.2 observation that aggregation destroys predictability.
	if rng.Bernoulli(0.55) {
		for _, pf := range []devices.PeriodicFlow{
			{DomainSuffix: "api.", Period: 9 * time.Second, Size: rng.IntBetween(100, 600), Proto: "tcp", Dir: flows.DirOutbound, TLS: 0x0303, SizeDither: 0.08},
			{DomainSuffix: "api.", Period: 14 * time.Second, Size: rng.IntBetween(601, 1200), Proto: "tcp", Dir: flows.DirOutbound, TLS: 0x0303, SizeDither: 0.08},
		} {
			ctrl = append(ctrl, pf)
		}
	}
	// Draw a target unpredictable-traffic fraction with a long tail (most
	// devices 2-15%, a minority much worse) and derive the event rate that
	// realizes it against this device's periodic packet volume — this
	// shapes the Fig 1(b) CDF.
	frac := rng.LogNormal(-2.5, 0.9) // median ~8%
	if frac > 0.6 {
		frac = 0.6
	}
	periodicPerDay := 0.0
	for _, cf := range ctrl {
		periodicPerDay += float64(24*time.Hour) / float64(cf.Period)
	}
	const avgEventPackets = 3.5
	unpred := frac / (1 - frac) * periodicPerDay / avgEventPackets
	return &devices.Profile{
		Name:                fmt.Sprintf("synth%03d", idx),
		Kind:                "synthetic",
		CompletionN:         5,
		Control:             ctrl,
		UnpredControlPerDay: unpred,
		ManualShape: devices.EventShape{
			FirstDir: flows.DirInbound, Proto: "tcp", TLS: 0x0303, TCPFlags: 0x18,
			SizeMin: 150, SizeMax: 1200, PacketsMin: 3, PacketsMax: 10,
			Spacing: 400 * time.Millisecond, DomainSuffix: "app.",
		},
		AutoShape: devices.EventShape{
			FirstDir: flows.DirInbound, Proto: "tcp", TLS: 0x0304, TCPFlags: 0x10,
			SizeMin: 120, SizeMax: 800, PacketsMin: 2, PacketsMax: 6,
			Spacing: 500 * time.Millisecond, DomainSuffix: "auto.",
		},
		CtrlShape: devices.EventShape{
			FirstDir: flows.DirOutbound, Proto: "udp",
			SizeMin: 70, SizeMax: 500, PacketsMin: 2, PacketsMax: 5,
			Spacing: 600 * time.Millisecond, DomainSuffix: "tel.",
		},
		CloudDomain: map[netsim.Location]string{
			netsim.LocCloudUS: fmt.Sprintf("dev%03d.vendor.example", idx),
		},
	}
}

// YourThings builds the YourThings-like corpus: n devices captured
// continuously for the given duration, no human interactions labeled (the
// dataset has no labels).
func YourThings(seed int64, n int, duration time.Duration) []Trace {
	root := simclock.NewRNG(seed)
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		rng := root.Fork(fmt.Sprintf("yt%d", i))
		p := syntheticProfile(rng, i)
		recs := p.Generate(rng, devices.TraceOptions{
			Start: simclock.Epoch, Duration: duration,
			// Unlabeled occasional interactions exist in the capture.
			ManualPerDay: rng.Float64() * 3,
		})
		// YourThings has no ground truth: strip labels.
		for j := range recs {
			recs[j].Category = flows.CategoryUnknown
		}
		out = append(out, Trace{Name: p.Name, Device: p, Loc: netsim.LocCloudUS, Records: recs})
	}
	return out
}

// MonIoTr builds the Mon(IoT)r-like corpus: per device an idle capture
// (control only) and an active capture (control plus scripted interactions
// at a high rate, as in the dataset's experiment automation).
func MonIoTr(seed int64, n int, duration time.Duration) (idle, active []Trace) {
	root := simclock.NewRNG(seed)
	for i := 0; i < n; i++ {
		rng := root.Fork(fmt.Sprintf("mon%d", i))
		p := syntheticProfile(rng, i)
		idleRecs := p.Generate(rng.Fork("idle"), devices.TraceOptions{
			Start: simclock.Epoch, Duration: duration,
		})
		activeRecs := p.Generate(rng.Fork("active"), devices.TraceOptions{
			Start: simclock.Epoch, Duration: duration,
			// Scripted experiments drive interactions back-to-back.
			ManualPerDay: 200,
		})
		idle = append(idle, Trace{Name: p.Name + "-idle", Device: p, Records: idleRecs})
		active = append(active, Trace{Name: p.Name + "-active", Device: p, Records: activeRecs})
	}
	return idle, active
}

// InspectorWindow is IoT Inspector's aggregation granularity.
const InspectorWindow = 5 * time.Second

// InspectorAggregate coarsens a packet trace to IoT Inspector's 5-second
// per-flow aggregates and re-expresses them as pseudo-records (one per
// window per flow, size = byte sum) so the same heuristic can run — the
// paper's §2.2 exercise showing aggregation costs predictability.
func InspectorAggregate(recs []flows.Record, window time.Duration) []flows.Record {
	if window <= 0 {
		window = InspectorWindow
	}
	type aggKey struct {
		win    int64
		domain string
		proto  string
		dir    flows.Direction
	}
	sums := map[aggKey]*flows.Record{}
	for _, r := range recs {
		win := r.Time.Unix() / int64(window.Seconds())
		k := aggKey{win: win, domain: registeredDomain(r.RemoteDomain), proto: r.Proto, dir: r.Dir}
		if agg, ok := sums[k]; ok {
			agg.Size += r.Size
		} else {
			cp := r
			cp.Time = time.Unix(win*int64(window.Seconds()), 0).UTC()
			cp.LocalPort, cp.RemotePort = 0, 0
			sums[k] = &cp
		}
	}
	out := make([]flows.Record, 0, len(sums))
	for _, agg := range sums {
		out = append(out, *agg)
	}
	sortRecords(out)
	return out
}

// registeredDomain strips service subdomains, keeping the final three
// labels: IoT Inspector identifies remote parties at host granularity, so
// every flow a device keeps to one vendor collapses into the same
// aggregate — the paper's explanation for why "one unpredictable packet
// will change the sum of packet sizes over a 5-second window".
func registeredDomain(d string) string {
	labels := strings.Split(d, ".")
	if len(labels) <= 3 {
		return d
	}
	return strings.Join(labels[len(labels)-3:], ".")
}

func sortRecords(recs []flows.Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
}
