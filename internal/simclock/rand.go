package simclock

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source shared by the simulators. It wraps
// math/rand with the distributions the traffic and sensor models need, so
// every experiment is reproducible from a single seed.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream keyed by label, so sub-simulators do not
// perturb each other's sequences when one consumes more draws.
func (r *RNG) Fork(label string) *RNG {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewRNG(r.Int63() ^ int64(h))
}

// Normal draws from N(mean, stddev).
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// LogNormal draws from a log-normal with the given underlying mu/sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exponential draws from Exp(1/mean).
func (r *RNG) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// IntBetween returns a uniform integer in [lo, hi] inclusive.
func (r *RNG) IntBetween(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Jitter returns v perturbed by a uniform factor in [1-frac, 1+frac].
func (r *RNG) Jitter(v, frac float64) float64 {
	return v * (1 + frac*(2*r.Float64()-1))
}

// Pick returns a uniformly random element index for a slice of length n.
func (r *RNG) Pick(n int) int {
	if n <= 0 {
		return 0
	}
	return r.Intn(n)
}
