// Package simclock provides the virtual/real clock abstraction used by every
// time-dependent component in the repository.
//
// The paper's experiments span days of traffic (predictability analysis) and
// milliseconds of latency (QUIC attestation). To run both as fast tests, all
// components take a Clock. A VirtualClock advances only when told to, so a
// two-week testbed trace simulates in milliseconds; a RealClock wraps the
// wall clock for the loopback-UDP latency experiments.
package simclock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time source components depend on.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// Sleeper is implemented by clocks that can block until a deadline.
type Sleeper interface {
	Clock
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// RealClock reads the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Sleeper.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a manually advanced clock with an event queue. It is safe
// for concurrent use. The zero value is not ready; use NewVirtual.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	queue  []*timer
	nextID int
}

type timer struct {
	id   int
	when time.Time
	fn   func(time.Time)
}

// Epoch is the default start instant for virtual clocks: a fixed, readable
// reference so traces are reproducible byte-for-byte.
var Epoch = time.Date(2022, time.June, 1, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a virtual clock starting at Epoch.
func NewVirtual() *VirtualClock { return NewVirtualAt(Epoch) }

// NewVirtualAt returns a virtual clock starting at the given instant.
func NewVirtualAt(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules fn to run (synchronously, during Advance) when the
// clock passes d from now. It returns a cancel function.
func (c *VirtualClock) AfterFunc(d time.Duration, fn func(now time.Time)) (cancel func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	t := &timer{id: c.nextID, when: c.now.Add(d), fn: fn}
	c.queue = append(c.queue, t)
	id := t.id
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for i, q := range c.queue {
			if q.id == id {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				return
			}
		}
	}
}

// Advance moves the clock forward by d, firing due timers in timestamp order.
// Timers scheduled by running timers fire too if they fall inside the window.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		idx := -1
		for i, t := range c.queue {
			if !t.when.After(target) && (idx < 0 || t.when.Before(c.queue[idx].when) ||
				(t.when.Equal(c.queue[idx].when) && t.id < c.queue[idx].id)) {
				idx = i
			}
		}
		if idx < 0 {
			break
		}
		t := c.queue[idx]
		c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
		if t.when.After(c.now) {
			c.now = t.when
		}
		c.mu.Unlock()
		t.fn(t.when)
		c.mu.Lock()
	}
	if target.After(c.now) {
		c.now = target
	}
	c.mu.Unlock()
}

// AdvanceTo moves the clock to the given instant (no-op if in the past).
func (c *VirtualClock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	now := c.now
	c.mu.Unlock()
	if t.After(now) {
		c.Advance(t.Sub(now))
	}
}

// Pending reports how many timers are scheduled.
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// NextDeadline returns the earliest scheduled timer instant, and false when
// no timers are pending.
func (c *VirtualClock) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return time.Time{}, false
	}
	sorted := make([]time.Time, len(c.queue))
	for i, t := range c.queue {
		sorted[i] = t.when
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Before(sorted[j]) })
	return sorted[0], true
}

// Run drains the timer queue, advancing to each deadline, until either no
// timers remain or the clock would pass end. It returns the number of timers
// fired.
func (c *VirtualClock) Run(end time.Time) int {
	fired := 0
	for {
		next, ok := c.NextDeadline()
		if !ok || next.After(end) {
			break
		}
		before := c.Pending()
		c.AdvanceTo(next)
		if after := c.Pending(); after < before {
			fired += before - after
		}
	}
	c.AdvanceTo(end)
	return fired
}
