package simclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockStartsAtEpoch(t *testing.T) {
	c := NewVirtual()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), Epoch)
	}
}

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtual()
	c.Advance(3 * time.Second)
	if got, want := c.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAfterFuncFiresInOrder(t *testing.T) {
	c := NewVirtual()
	var order []int
	c.AfterFunc(2*time.Second, func(time.Time) { order = append(order, 2) })
	c.AfterFunc(1*time.Second, func(time.Time) { order = append(order, 1) })
	c.AfterFunc(3*time.Second, func(time.Time) { order = append(order, 3) })
	c.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired order = %v, want [1 2 3]", order)
	}
}

func TestAfterFuncSeesFireTime(t *testing.T) {
	c := NewVirtual()
	var at time.Time
	c.AfterFunc(90*time.Millisecond, func(now time.Time) { at = now })
	c.Advance(time.Second)
	if want := Epoch.Add(90 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("timer fired at %v, want %v", at, want)
	}
}

func TestAfterFuncNotFiredBeforeDeadline(t *testing.T) {
	c := NewVirtual()
	fired := false
	c.AfterFunc(10*time.Second, func(time.Time) { fired = true })
	c.Advance(9 * time.Second)
	if fired {
		t.Fatal("timer fired before deadline")
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
}

func TestCancelTimer(t *testing.T) {
	c := NewVirtual()
	fired := false
	cancel := c.AfterFunc(time.Second, func(time.Time) { fired = true })
	cancel()
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	c := NewVirtual()
	cancel := c.AfterFunc(time.Second, func(time.Time) {})
	cancel()
	cancel() // must not panic or remove another timer
	c.AfterFunc(time.Second, func(time.Time) {})
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
}

func TestNestedTimersFireWithinWindow(t *testing.T) {
	c := NewVirtual()
	var seq []string
	c.AfterFunc(time.Second, func(time.Time) {
		seq = append(seq, "outer")
		c.AfterFunc(time.Second, func(time.Time) { seq = append(seq, "inner") })
	})
	c.Advance(5 * time.Second)
	if len(seq) != 2 || seq[0] != "outer" || seq[1] != "inner" {
		t.Fatalf("seq = %v, want [outer inner]", seq)
	}
	if got, want := c.Now(), Epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("clock ended at %v, want %v", got, want)
	}
}

func TestNestedTimerBeyondWindowDoesNotFire(t *testing.T) {
	c := NewVirtual()
	innerFired := false
	c.AfterFunc(time.Second, func(time.Time) {
		c.AfterFunc(time.Hour, func(time.Time) { innerFired = true })
	})
	c.Advance(2 * time.Second)
	if innerFired {
		t.Fatal("timer beyond the advance window fired")
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
}

func TestAdvanceTo(t *testing.T) {
	c := NewVirtual()
	target := Epoch.Add(time.Minute)
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatalf("Now() = %v, want %v", c.Now(), target)
	}
	// Moving to the past is a no-op.
	c.AdvanceTo(Epoch)
	if !c.Now().Equal(target) {
		t.Fatalf("AdvanceTo(past) moved the clock to %v", c.Now())
	}
}

func TestRunDrainsQueue(t *testing.T) {
	c := NewVirtual()
	count := 0
	for i := 1; i <= 5; i++ {
		c.AfterFunc(time.Duration(i)*time.Second, func(time.Time) { count++ })
	}
	fired := c.Run(Epoch.Add(time.Minute))
	if count != 5 {
		t.Fatalf("fired %d callbacks, want 5", count)
	}
	if fired != 5 {
		t.Fatalf("Run reported %d, want 5", fired)
	}
	if got, want := c.Now(), Epoch.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("clock ended at %v, want %v", got, want)
	}
}

func TestConcurrentAfterFunc(t *testing.T) {
	c := NewVirtual()
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.AfterFunc(time.Second, func(time.Time) {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	c.Advance(2 * time.Second)
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
}

func TestSameDeadlineFiresInScheduleOrder(t *testing.T) {
	c := NewVirtual()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.AfterFunc(time.Second, func(time.Time) { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending schedule order", order)
		}
	}
}

func TestRealClockProgresses(t *testing.T) {
	var c RealClock
	a := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(a) {
		t.Fatal("real clock did not progress across Sleep")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(7).Fork("devices")
	b := NewRNG(7).Fork("devices")
	c := NewRNG(7).Fork("sensors")
	same, diff := true, true
	for i := 0; i < 32; i++ {
		av := a.Float64()
		if av != b.Float64() {
			same = false
		}
		if av != c.Float64() {
			diff = false
		}
	}
	if !same {
		t.Fatal("Fork with equal label not reproducible")
	}
	if diff {
		t.Fatal("Fork with different labels produced identical stream")
	}
}

func TestIntBetweenBounds(t *testing.T) {
	r := NewRNG(1)
	f := func(lo, hi int16) bool {
		l, h := int(lo), int(hi)
		if h < l {
			l, h = h, l
		}
		v := r.IntBetween(l, h)
		return v >= l && v <= h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter(100, 0.1) = %v out of [90,110]", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(3)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if mean < 4.9 || mean > 5.1 {
		t.Fatalf("mean = %v, want ~5", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(4)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if hits < 2800 || hits > 3200 {
		t.Fatalf("Bernoulli(0.3) hit %d/10000, want ~3000", hits)
	}
}
