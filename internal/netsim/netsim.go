// Package netsim is the discrete-event network substituting for the paper's
// physical testbed: a home LAN (devices, phone, proxy, gateway) and cloud
// endpoints in different locations (US, and the Germany/Japan VPN exits),
// with per-path latency profiles covering the LAN and mobile scenarios of
// the evaluation. Frames are real Ethernet bytes from internal/packet, so
// everything captured here can be analyzed or written to pcap unchanged.
//
// Time is virtual (internal/simclock): a two-week testbed trace runs in
// milliseconds of wall time.
package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"fiat/internal/obs"
	"fiat/internal/packet"
	"fiat/internal/simclock"
)

// Location tags where a node sits; latency is a function of the endpoint
// pair.
type Location string

// Locations used across the experiments.
const (
	LocLAN     Location = "lan"      // inside the home network
	LocMobile  Location = "mobile"   // the phone on LTE near home
	LocCloudUS Location = "cloud-us" // vendor cloud, US
	LocCloudDE Location = "cloud-de" // vendor cloud via the Germany VPN exit
	LocCloudJP Location = "cloud-jp" // vendor cloud via the Japan VPN exit
)

// PathProfile describes one direction of a path.
type PathProfile struct {
	OneWay time.Duration
	Jitter time.Duration
	Loss   float64
}

// DefaultProfiles returns the calibrated latency matrix. One-way values are
// chosen so round trips land near the paper's measurements (LAN RTT a few
// ms; mobile adds tens of ms; VPN exits add intercontinental RTT).
func DefaultProfiles() map[[2]Location]PathProfile {
	p := map[[2]Location]PathProfile{
		{LocLAN, LocLAN}:        {OneWay: 1500 * time.Microsecond, Jitter: 500 * time.Microsecond},
		{LocLAN, LocCloudUS}:    {OneWay: 15 * time.Millisecond, Jitter: 3 * time.Millisecond},
		{LocLAN, LocCloudDE}:    {OneWay: 55 * time.Millisecond, Jitter: 8 * time.Millisecond},
		{LocLAN, LocCloudJP}:    {OneWay: 75 * time.Millisecond, Jitter: 10 * time.Millisecond},
		{LocMobile, LocLAN}:     {OneWay: 35 * time.Millisecond, Jitter: 10 * time.Millisecond},
		{LocMobile, LocCloudUS}: {OneWay: 45 * time.Millisecond, Jitter: 12 * time.Millisecond},
		{LocMobile, LocCloudDE}: {OneWay: 85 * time.Millisecond, Jitter: 15 * time.Millisecond},
		{LocMobile, LocCloudJP}: {OneWay: 105 * time.Millisecond, Jitter: 18 * time.Millisecond},
	}
	// Mirror for symmetric lookup.
	for k, v := range p {
		p[[2]Location{k[1], k[0]}] = v
	}
	return p
}

// Node is one attached host. Recv runs on the virtual-clock goroutine when
// a frame is delivered.
type Node struct {
	Name string
	MAC  packet.MAC
	IP   netip.Addr
	Loc  Location
	Recv func(self *Node, frame []byte, now time.Time)
}

// Network is the simulated fabric.
type Network struct {
	Clock *simclock.VirtualClock

	rng      *simclock.RNG
	profiles map[[2]Location]PathProfile

	mu         sync.RWMutex
	byMAC      map[packet.MAC]*Node
	byIP       map[netip.Addr]*Node
	taps       []func(frame []byte, at time.Time)
	framed     int
	faults     map[[2]Location]*faultState
	faultStats FaultStats
	mx         netsimMetrics
}

// netsimMetrics mirrors the fabric counters into a registry. The handles are
// nil (no-op) until SetObs installs one, so the fabric stays dependency-free
// by default; fault counters are bumped alongside FaultStats under nw.mu.
type netsimMetrics struct {
	frames        *obs.Counter
	burstDropped  *obs.Counter
	outageDropped *obs.Counter
	duplicated    *obs.Counter
	reordered     *obs.Counter
	corrupted     *obs.Counter
}

// SetObs wires the fabric's frame and fault counters into reg under the
// fiat_netsim_* names, so a scenario's metric snapshot shows the injected
// fault activity next to the pipeline's decisions.
func (nw *Network) SetObs(reg *obs.Registry) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.mx = netsimMetrics{
		frames:        reg.Counter("fiat_netsim_frames_total"),
		burstDropped:  reg.Counter("fiat_netsim_fault_burst_dropped_total"),
		outageDropped: reg.Counter("fiat_netsim_fault_outage_dropped_total"),
		duplicated:    reg.Counter("fiat_netsim_fault_duplicated_total"),
		reordered:     reg.Counter("fiat_netsim_fault_reordered_total"),
		corrupted:     reg.Counter("fiat_netsim_fault_corrupted_total"),
	}
}

// New builds an empty network on the given clock.
func New(clock *simclock.VirtualClock, rng *simclock.RNG) *Network {
	return &Network{
		Clock:    clock,
		rng:      rng,
		profiles: DefaultProfiles(),
		byMAC:    make(map[packet.MAC]*Node),
		byIP:     make(map[netip.Addr]*Node),
		faults:   make(map[[2]Location]*faultState),
	}
}

// SetProfile overrides one path profile (both directions).
func (nw *Network) SetProfile(a, b Location, p PathProfile) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.profiles[[2]Location{a, b}] = p
	nw.profiles[[2]Location{b, a}] = p
}

// Attach registers a node. Attaching a duplicate MAC or IP is a programming
// error and panics.
func (nw *Network) Attach(n *Node) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, ok := nw.byMAC[n.MAC]; ok {
		panic(fmt.Sprintf("netsim: duplicate MAC %s", n.MAC))
	}
	if _, ok := nw.byIP[n.IP]; ok && n.IP.IsValid() {
		panic(fmt.Sprintf("netsim: duplicate IP %s", n.IP))
	}
	nw.byMAC[n.MAC] = n
	if n.IP.IsValid() {
		nw.byIP[n.IP] = n
	}
}

// NodeByIP resolves an attached node.
func (nw *Network) NodeByIP(ip netip.Addr) (*Node, bool) {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	n, ok := nw.byIP[ip]
	return n, ok
}

// NodeByMAC resolves an attached node.
func (nw *Network) NodeByMAC(mac packet.MAC) (*Node, bool) {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	n, ok := nw.byMAC[mac]
	return n, ok
}

// Tap registers a capture callback seeing every frame at send time — the
// monitoring vantage the paper's Raspberry Pi access point provides.
func (nw *Network) Tap(fn func(frame []byte, at time.Time)) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.taps = append(nw.taps, fn)
}

// Frames reports how many frames have been sent.
func (nw *Network) Frames() int {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.framed
}

// defaultPathProfile is what a pair absent from the latency matrix gets: a
// generic WAN-ish path. Both latency sampling and loss sampling must agree
// on it, so every lookup goes through profileFor.
var defaultPathProfile = PathProfile{OneWay: 20 * time.Millisecond, Jitter: 5 * time.Millisecond}

// profileFor is the single path-profile lookup: a configured pair returns
// its profile, an unknown pair falls back to defaultPathProfile.
func (nw *Network) profileFor(from, to Location) PathProfile {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	if prof, ok := nw.profiles[[2]Location{from, to}]; ok {
		return prof
	}
	return defaultPathProfile
}

// latency samples the one-way delay for a sender/receiver pair.
func (nw *Network) latency(from, to Location) time.Duration {
	prof := nw.profileFor(from, to)
	d := prof.OneWay
	if prof.Jitter > 0 {
		d += time.Duration(nw.rng.Int63n(int64(2*prof.Jitter))) - prof.Jitter
	}
	if d < 0 {
		d = 0
	}
	return d
}

// SendFrame injects a frame into the fabric. Delivery is scheduled on the
// virtual clock after the path latency; broadcast frames reach every node
// except the sender. Loss is sampled per delivery.
func (nw *Network) SendFrame(frame []byte) {
	now := nw.Clock.Now()
	nw.mu.Lock()
	nw.framed++
	nw.mx.frames.Inc()
	taps := make([]func(frame []byte, at time.Time), len(nw.taps))
	copy(taps, nw.taps)
	nw.mu.Unlock()
	for _, t := range taps {
		t(frame, now)
	}
	p := packet.Decode(frame, packet.CaptureInfo{Timestamp: now, Length: len(frame), CaptureLength: len(frame)})
	eth := p.Ethernet()
	if eth == nil {
		return
	}
	sender, _ := nw.NodeByMAC(eth.SrcMAC)
	senderLoc := LocLAN
	if sender != nil {
		senderLoc = sender.Loc
	}
	deliver := func(dst *Node) {
		prof := nw.profileFor(senderLoc, dst.Loc)
		if prof.Loss > 0 && nw.rng.Bernoulli(prof.Loss) {
			return
		}
		d := nw.latency(senderLoc, dst.Loc)
		buf := make([]byte, len(frame))
		copy(buf, frame)
		if fs := nw.faultFor(senderLoc, dst.Loc); fs != nil {
			drop, d2, dups := nw.judgeFault(fs, now, d, buf)
			if drop {
				return
			}
			d = d2
			// Duplicate copies carry the pre-corruption bytes of the
			// original frame, like a retransmission upstream of the
			// corrupting hop.
			for _, dd := range dups {
				dup := make([]byte, len(frame))
				copy(dup, frame)
				node := dst
				nw.Clock.AfterFunc(dd, func(at time.Time) {
					if node.Recv != nil {
						node.Recv(node, dup, at)
					}
				})
			}
		}
		node := dst
		nw.Clock.AfterFunc(d, func(at time.Time) {
			if node.Recv != nil {
				node.Recv(node, buf, at)
			}
		})
	}
	if eth.DstMAC == packet.BroadcastMAC {
		nw.mu.RLock()
		nodes := make([]*Node, 0, len(nw.byMAC))
		for _, n := range nw.byMAC {
			if n.MAC != eth.SrcMAC && n.Loc == senderLoc {
				nodes = append(nodes, n)
			}
		}
		nw.mu.RUnlock()
		for _, n := range nodes {
			deliver(n)
		}
		return
	}
	if dst, ok := nw.NodeByMAC(eth.DstMAC); ok {
		deliver(dst)
	}
}
