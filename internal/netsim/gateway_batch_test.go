package netsim

import (
	"testing"
	"time"

	"fiat/internal/packet"
	"fiat/internal/simclock"
)

// recordingInspector logs batch sizes and drops frames whose UDP payload
// starts with '!' — a stand-in for the proxy's verdict.
type recordingInspector struct {
	batches []int
}

func (ri *recordingInspector) InspectBatch(frames [][]byte, now time.Time) []bool {
	ri.batches = append(ri.batches, len(frames))
	out := make([]bool, len(frames))
	for i, f := range frames {
		p := packet.Decode(f, packet.CaptureInfo{Timestamp: now})
		udp := p.UDP()
		out[i] = udp == nil || len(udp.LayerPayload()) == 0 || udp.LayerPayload()[0] != '!'
	}
	return out
}

// TestGatewayBatchesSameInstantFrames drives frames through an inspected
// gateway: same-instant arrivals are decided as one batch, later arrivals
// flush the previous batch first, dropped verdicts never reach the WAN, and
// the trailing batch drains on Flush.
func TestGatewayBatchesSameInstantFrames(t *testing.T) {
	nw := New(simclock.NewVirtual(), simclock.NewRNG(1))
	// Deterministic arrival instants: no jitter on either leg.
	nw.SetProfile(LocLAN, LocLAN, PathProfile{OneWay: time.Millisecond})
	nw.SetProfile(LocLAN, LocCloudUS, PathProfile{OneWay: 10 * time.Millisecond})

	gw := NewGateway(nw, "gw", gwMAC, gwIP)
	insp := &recordingInspector{}
	gw.SetInspector(insp, 64)

	var cloudGot [][]byte
	nw.Attach(&Node{Name: "dev", MAC: devMAC, IP: devIP, Loc: LocLAN})
	nw.Attach(&Node{Name: "cloud", MAC: cloudMAC, IP: cloudIP, Loc: LocCloudUS,
		Recv: func(_ *Node, f []byte, _ time.Time) { cloudGot = append(cloudGot, f) }})

	var b packet.Builder
	send := func(payload string) {
		nw.SendFrame(b.UDPPacket(packet.UDPSpec{SrcMAC: devMAC, DstMAC: gwMAC,
			SrcIP: devIP, DstIP: cloudIP, SrcPort: 4000, DstPort: 53,
			Payload: []byte(payload)}))
	}

	// Three frames sent at t0 arrive at the gateway at the same instant.
	send("a")
	send("!drop-me")
	send("c")
	nw.Clock.Advance(time.Millisecond)
	if len(insp.batches) != 0 {
		t.Fatalf("batch flushed with no later frame or Flush: %v", insp.batches)
	}

	// Two more at t1: their arrival flushes the t0 batch of 3.
	send("d")
	send("e")
	nw.Clock.Advance(time.Millisecond)
	if len(insp.batches) != 1 || insp.batches[0] != 3 {
		t.Fatalf("t0 batch = %v, want [3]", insp.batches)
	}

	// Explicit flush drains the t1 batch of 2.
	gw.Flush()
	if len(insp.batches) != 2 || insp.batches[1] != 2 {
		t.Fatalf("batches = %v, want [3 2]", insp.batches)
	}

	// Deliver the forwarded frames to the cloud: 4 of 5 (one dropped).
	nw.Clock.Advance(time.Second)
	if len(cloudGot) != 4 {
		t.Fatalf("cloud received %d frames, want 4 (one dropped by verdict)", len(cloudGot))
	}
	for _, f := range cloudGot {
		p := packet.Decode(f, packet.CaptureInfo{})
		if udp := p.UDP(); udp != nil && len(udp.LayerPayload()) > 0 && udp.LayerPayload()[0] == '!' {
			t.Fatal("dropped frame leaked to the WAN")
		}
	}
	if gw.BatchStats.Frames != 5 || gw.BatchStats.Dropped != 1 || gw.BatchStats.Batches != 2 {
		t.Fatalf("BatchStats = %+v", gw.BatchStats)
	}
}

// TestGatewayMaxBatchForcesFlush checks the size bound: the batch flushes as
// soon as maxBatch same-instant frames accumulate.
func TestGatewayMaxBatchForcesFlush(t *testing.T) {
	nw := New(simclock.NewVirtual(), simclock.NewRNG(1))
	nw.SetProfile(LocLAN, LocLAN, PathProfile{OneWay: time.Millisecond})
	nw.SetProfile(LocLAN, LocCloudUS, PathProfile{OneWay: 10 * time.Millisecond})
	gw := NewGateway(nw, "gw", gwMAC, gwIP)
	insp := &recordingInspector{}
	gw.SetInspector(insp, 2)
	nw.Attach(&Node{Name: "dev", MAC: devMAC, IP: devIP, Loc: LocLAN})
	nw.Attach(&Node{Name: "cloud", MAC: cloudMAC, IP: cloudIP, Loc: LocCloudUS})

	var b packet.Builder
	for i := 0; i < 5; i++ {
		nw.SendFrame(b.UDPPacket(packet.UDPSpec{SrcMAC: devMAC, DstMAC: gwMAC,
			SrcIP: devIP, DstIP: cloudIP, SrcPort: 4000, DstPort: 53, Payload: []byte{byte('a' + i)}}))
	}
	nw.Clock.Advance(time.Millisecond)
	if len(insp.batches) != 2 || insp.batches[0] != 2 || insp.batches[1] != 2 {
		t.Fatalf("size-bounded batches = %v, want [2 2] with 1 pending", insp.batches)
	}
	gw.Flush()
	if len(insp.batches) != 3 || insp.batches[2] != 1 {
		t.Fatalf("after Flush batches = %v, want [2 2 1]", insp.batches)
	}
}

// TestGatewayWithoutInspectorForwardsImmediately guards the default path:
// no inspector, no buffering.
func TestGatewayWithoutInspectorForwardsImmediately(t *testing.T) {
	nw := New(simclock.NewVirtual(), simclock.NewRNG(1))
	nw.SetProfile(LocLAN, LocLAN, PathProfile{OneWay: time.Millisecond})
	nw.SetProfile(LocLAN, LocCloudUS, PathProfile{OneWay: 10 * time.Millisecond})
	gw := NewGateway(nw, "gw", gwMAC, gwIP)
	got := 0
	nw.Attach(&Node{Name: "dev", MAC: devMAC, IP: devIP, Loc: LocLAN})
	nw.Attach(&Node{Name: "cloud", MAC: cloudMAC, IP: cloudIP, Loc: LocCloudUS,
		Recv: func(*Node, []byte, time.Time) { got++ }})
	var b packet.Builder
	nw.SendFrame(b.UDPPacket(packet.UDPSpec{SrcMAC: devMAC, DstMAC: gwMAC,
		SrcIP: devIP, DstIP: cloudIP, SrcPort: 1, DstPort: 2}))
	nw.Clock.Advance(time.Second)
	if got != 1 {
		t.Fatalf("cloud received %d frames, want 1", got)
	}
	if gw.BatchStats.Batches != 0 {
		t.Fatalf("uninspected gateway counted batches: %+v", gw.BatchStats)
	}
}
