package netsim

import (
	"testing"
	"time"
)

func TestNoHoldDeliversImmediately(t *testing.T) {
	m := DefaultTCPModel(30 * time.Millisecond)
	out := m.DeliverWithHold(0)
	if !out.Delivered || out.Retransmits != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if out.CompletionTime != 15*time.Millisecond {
		t.Fatalf("completion = %v, want one-way 15ms", out.CompletionTime)
	}
}

func TestShortHoldAbsorbedWithoutRetransmit(t *testing.T) {
	// A hold shorter than the first RTO completes before any retransmit.
	m := DefaultTCPModel(30 * time.Millisecond)
	out := m.DeliverWithHold(800 * time.Millisecond)
	if !out.Delivered {
		t.Fatal("not delivered")
	}
	if out.Retransmits != 0 {
		t.Fatalf("retransmits = %d, want 0 (ACK returns before RTO)", out.Retransmits)
	}
	if out.CompletionTime != 800*time.Millisecond+15*time.Millisecond {
		t.Fatalf("completion = %v", out.CompletionTime)
	}
}

func TestTwoSecondHoldCostsRetransmits(t *testing.T) {
	m := DefaultTCPModel(30 * time.Millisecond)
	out := m.DeliverWithHold(2 * time.Second)
	if !out.Delivered {
		t.Fatal("not delivered")
	}
	if out.Retransmits < 1 {
		t.Fatalf("retransmits = %d, want >= 1 for a 2 s hold with 1 s RTO", out.Retransmits)
	}
	if out.CompletionTime < 2*time.Second {
		t.Fatalf("completion %v before the hold ended", out.CompletionTime)
	}
}

func TestCompletionMonotoneInHold(t *testing.T) {
	m := DefaultTCPModel(30 * time.Millisecond)
	prev := time.Duration(0)
	for hold := time.Duration(0); hold <= 10*time.Second; hold += 250 * time.Millisecond {
		out := m.DeliverWithHold(hold)
		if !out.Delivered {
			t.Fatalf("hold %v: not delivered (within backoff budget)", hold)
		}
		if out.CompletionTime < prev {
			t.Fatalf("completion not monotone at hold %v", hold)
		}
		prev = out.CompletionTime
	}
}

func TestHoldBeyondBackoffBudgetAborts(t *testing.T) {
	m := TCPModel{InitialRTO: time.Second, MaxRetries: 2, RTT: 30 * time.Millisecond}
	// Retransmits at 1s, 3s; a hold past the last send + its flight.
	out := m.DeliverWithHold(time.Hour)
	if out.Delivered {
		t.Fatalf("delivered despite hold exceeding all retransmissions: %+v", out)
	}
}

func TestCommandSucceedsMatchesPaperTwoSeconds(t *testing.T) {
	// §6: all devices tolerate 2 s extra delay; the tightest app timeouts
	// in our testbed are ~2.8 s.
	m := DefaultTCPModel(30 * time.Millisecond)
	if !m.CommandSucceeds(2*time.Second, 2800*time.Millisecond) {
		t.Fatal("2 s hold should survive a 2.8 s app timeout")
	}
	if m.CommandSucceeds(3*time.Second, 2800*time.Millisecond) {
		t.Fatal("3 s hold should break a 2.8 s app timeout")
	}
	if !m.CommandSucceeds(3*time.Second, 6*time.Second) {
		t.Fatal("3 s hold should survive a 6 s app timeout")
	}
}
