package netsim

import (
	"bytes"
	"testing"
	"time"

	"fiat/internal/packet"
	"fiat/internal/simclock"
)

// faultPair builds a two-node LAN with a deterministic (jitter-free) path
// and returns the network, a sender, and a delivery log.
func faultPair(t *testing.T) (*Network, func(payload string), *[][]byte) {
	t.Helper()
	nw := New(simclock.NewVirtual(), simclock.NewRNG(1))
	nw.SetProfile(LocLAN, LocLAN, PathProfile{OneWay: time.Millisecond})
	var got [][]byte
	nw.Attach(&Node{Name: "a", MAC: devMAC, IP: devIP, Loc: LocLAN})
	nw.Attach(&Node{Name: "b", MAC: gwMAC, IP: gwIP, Loc: LocLAN,
		Recv: func(_ *Node, f []byte, _ time.Time) { got = append(got, f) }})
	var b packet.Builder
	send := func(payload string) {
		nw.SendFrame(b.UDPPacket(packet.UDPSpec{SrcMAC: devMAC, DstMAC: gwMAC,
			SrcIP: devIP, DstIP: gwIP, SrcPort: 1, DstPort: 2, Payload: []byte(payload)}))
	}
	return nw, send, &got
}

func TestFaultPlanOutageWindow(t *testing.T) {
	nw, send, got := faultPair(t)
	start := nw.Clock.Now()
	nw.SetFaultPlan(LocLAN, LocLAN, &FaultPlan{
		Outages: []Outage{{From: start.Add(time.Second), To: start.Add(2 * time.Second)}},
	})

	send("before")
	nw.Clock.Advance(time.Second) // now inside the window
	send("during")
	nw.Clock.Advance(500 * time.Millisecond)
	send("during2")
	nw.Clock.Advance(time.Second) // window healed at +2 s
	send("after")
	nw.Clock.Advance(time.Second)

	if len(*got) != 2 {
		t.Fatalf("delivered %d frames, want 2 (before + after the outage)", len(*got))
	}
	if fs := nw.FaultStats(); fs.OutageDropped != 2 {
		t.Fatalf("OutageDropped = %d, want 2", fs.OutageDropped)
	}
}

func TestFaultPlanPartitionHelper(t *testing.T) {
	nw, send, got := faultPair(t)
	start := nw.Clock.Now()
	nw.Partition(LocLAN, LocLAN, start, start.Add(time.Second))
	send("lost")
	nw.Clock.Advance(2 * time.Second)
	send("healed")
	nw.Clock.Advance(time.Second)
	if len(*got) != 1 || !bytes.Contains((*got)[0], []byte("healed")) {
		t.Fatalf("want only the post-heal frame, got %d", len(*got))
	}
}

func TestFaultPlanBurstLossAllBad(t *testing.T) {
	nw, send, got := faultPair(t)
	// Enters the bad state on the first delivery and never recovers; the
	// bad state drops everything.
	nw.SetFaultPlan(LocLAN, LocLAN, &FaultPlan{
		Burst: &GilbertElliott{PGoodBad: 1, PBadGood: 0, LossGood: 0, LossBad: 1},
	})
	for i := 0; i < 20; i++ {
		send("x")
		nw.Clock.Advance(10 * time.Millisecond)
	}
	if len(*got) != 0 {
		t.Fatalf("delivered %d frames through an all-bad channel", len(*got))
	}
	if fs := nw.FaultStats(); fs.BurstDropped != 20 {
		t.Fatalf("BurstDropped = %d, want 20", fs.BurstDropped)
	}
}

func TestGilbertElliottMeanLoss(t *testing.T) {
	g := GilbertElliott{PGoodBad: 0.15, PBadGood: 0.35, LossGood: 0.05, LossBad: 0.8}
	m := g.MeanLoss()
	if m < 0.25 || m > 0.35 {
		t.Fatalf("MeanLoss = %.3f, want ~0.30", m)
	}
}

func TestFaultPlanDuplication(t *testing.T) {
	nw, send, got := faultPair(t)
	nw.SetFaultPlan(LocLAN, LocLAN, &FaultPlan{DupProb: 1})
	send("dup")
	nw.Clock.Advance(time.Second)
	if len(*got) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(*got))
	}
	if !bytes.Equal((*got)[0], (*got)[1]) {
		t.Fatal("duplicate differs from original")
	}
	if fs := nw.FaultStats(); fs.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", fs.Duplicated)
	}
}

func TestFaultPlanReorderDelaysDelivery(t *testing.T) {
	nw, send, got := faultPair(t)
	nw.SetFaultPlan(LocLAN, LocLAN, &FaultPlan{ReorderProb: 1, ReorderDelay: 500 * time.Millisecond})
	send("slow")
	// Base path is 1 ms; without the reorder hold the frame lands here.
	nw.Clock.Advance(time.Millisecond)
	held := len(*got) == 0
	nw.Clock.Advance(time.Second)
	if len(*got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(*got))
	}
	fs := nw.FaultStats()
	if fs.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", fs.Reordered)
	}
	// The extra delay is sampled in [0, ReorderDelay); with this seed the
	// frame must have been held past the base latency.
	if !held {
		t.Log("reorder drew a ~0 extra delay for this seed; mechanism still counted")
	}
}

func TestFaultPlanCorruptionFlipsOneBit(t *testing.T) {
	nw, send, got := faultPair(t)
	nw.SetFaultPlan(LocLAN, LocLAN, &FaultPlan{CorruptProb: 1})
	var sent []byte
	nw.Tap(func(f []byte, _ time.Time) { sent = append([]byte(nil), f...) })
	send("corrupt-me")
	nw.Clock.Advance(time.Second)
	if len(*got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(*got))
	}
	diff := 0
	for i := range sent {
		b := sent[i] ^ (*got)[0][i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
	if fs := nw.FaultStats(); fs.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", fs.Corrupted)
	}
}

func TestFaultPlanNilIsNoop(t *testing.T) {
	nw, send, got := faultPair(t)
	nw.SetFaultPlan(LocLAN, LocLAN, &FaultPlan{Burst: &GilbertElliott{PGoodBad: 1, LossBad: 1}})
	nw.SetFaultPlan(LocLAN, LocLAN, nil) // clear
	for i := 0; i < 5; i++ {
		send("x")
	}
	nw.Clock.Advance(time.Second)
	if len(*got) != 5 {
		t.Fatalf("delivered %d frames after clearing the plan, want 5", len(*got))
	}
	if fs := nw.FaultStats(); fs != (FaultStats{}) {
		t.Fatalf("cleared plan still counted faults: %+v", fs)
	}
}

// TestProfileLookupConsistent guards the satellite fix: loss and latency
// must resolve the path profile identically, including the unknown-pair
// default.
func TestProfileLookupConsistent(t *testing.T) {
	nw := newNet()
	const locX, locY Location = "x", "y" // not in the default matrix
	if p := nw.profileFor(locX, locY); p != defaultPathProfile {
		t.Fatalf("unknown pair profile = %+v, want default %+v", p, defaultPathProfile)
	}
	want := PathProfile{OneWay: 3 * time.Millisecond, Loss: 0.5}
	nw.SetProfile(locX, locY, want)
	if p := nw.profileFor(locX, locY); p != want {
		t.Fatalf("profileFor = %+v, want %+v", p, want)
	}
	if p := nw.profileFor(locY, locX); p != want {
		t.Fatalf("reverse profileFor = %+v, want %+v", p, want)
	}
}
