package netsim

import (
	"net/netip"
	"testing"
	"time"

	"fiat/internal/intercept"
	"fiat/internal/packet"
	"fiat/internal/simclock"
)

var (
	devMAC   = packet.MAC{2, 0, 0, 0, 0, 0x10}
	gwMAC    = packet.MAC{2, 0, 0, 0, 0, 0x01}
	cloudMAC = packet.MAC{2, 0, 0, 0, 1, 0x01}
	spyMAC   = packet.MAC{2, 0, 0, 0, 0, 0xEE}
	devIP    = netip.MustParseAddr("192.168.1.50")
	gwIP     = netip.MustParseAddr("192.168.1.1")
	cloudIP  = netip.MustParseAddr("52.0.0.10")
)

func newNet() *Network {
	return New(simclock.NewVirtual(), simclock.NewRNG(1))
}

func TestUnicastDelivery(t *testing.T) {
	nw := newNet()
	var got [][]byte
	var at time.Time
	nw.Attach(&Node{Name: "a", MAC: devMAC, IP: devIP, Loc: LocLAN})
	nw.Attach(&Node{Name: "b", MAC: gwMAC, IP: gwIP, Loc: LocLAN,
		Recv: func(_ *Node, f []byte, now time.Time) { got = append(got, f); at = now }})
	var b packet.Builder
	frame := b.UDPPacket(packet.UDPSpec{SrcMAC: devMAC, DstMAC: gwMAC,
		SrcIP: devIP, DstIP: gwIP, SrcPort: 1, DstPort: 2, Payload: []byte("hi")})
	nw.SendFrame(frame)
	if len(got) != 0 {
		t.Fatal("delivered before clock advance")
	}
	nw.Clock.Advance(10 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("delivered %d frames", len(got))
	}
	lat := at.Sub(simclock.Epoch)
	if lat < time.Millisecond || lat > 2*time.Millisecond {
		t.Fatalf("LAN latency = %v, want 1-2ms", lat)
	}
}

func TestNoDeliveryToUnknownMAC(t *testing.T) {
	nw := newNet()
	nw.Attach(&Node{Name: "a", MAC: devMAC, IP: devIP, Loc: LocLAN})
	var b packet.Builder
	nw.SendFrame(b.UDPPacket(packet.UDPSpec{SrcMAC: devMAC, DstMAC: packet.MAC{9, 9, 9, 9, 9, 9},
		SrcIP: devIP, DstIP: gwIP, SrcPort: 1, DstPort: 2}))
	nw.Clock.Advance(time.Second)
	// Nothing to assert beyond no panic; frame counter still increments.
	if nw.Frames() != 1 {
		t.Fatalf("Frames = %d", nw.Frames())
	}
}

func TestBroadcastStaysLocal(t *testing.T) {
	nw := newNet()
	lanHits, wanHits := 0, 0
	nw.Attach(&Node{Name: "sender", MAC: devMAC, IP: devIP, Loc: LocLAN})
	nw.Attach(&Node{Name: "lan-peer", MAC: gwMAC, IP: gwIP, Loc: LocLAN,
		Recv: func(*Node, []byte, time.Time) { lanHits++ }})
	nw.Attach(&Node{Name: "cloud", MAC: cloudMAC, IP: cloudIP, Loc: LocCloudUS,
		Recv: func(*Node, []byte, time.Time) { wanHits++ }})
	var b packet.Builder
	nw.SendFrame(b.ARPPacket(packet.ARPRequest, devMAC, devIP, packet.MAC{}, gwIP))
	nw.Clock.Advance(time.Second)
	if lanHits != 1 || wanHits != 0 {
		t.Fatalf("lan = %d, wan = %d; broadcast must not cross the gateway", lanHits, wanHits)
	}
}

func TestWANLatencyExceedsLAN(t *testing.T) {
	nw := newNet()
	var lanAt, wanAt time.Time
	nw.Attach(&Node{Name: "dev", MAC: devMAC, IP: devIP, Loc: LocLAN})
	nw.Attach(&Node{Name: "lan", MAC: gwMAC, IP: gwIP, Loc: LocLAN,
		Recv: func(_ *Node, _ []byte, now time.Time) { lanAt = now }})
	nw.Attach(&Node{Name: "jp", MAC: cloudMAC, IP: cloudIP, Loc: LocCloudJP,
		Recv: func(_ *Node, _ []byte, now time.Time) { wanAt = now }})
	var b packet.Builder
	nw.SendFrame(b.UDPPacket(packet.UDPSpec{SrcMAC: devMAC, DstMAC: gwMAC, SrcIP: devIP, DstIP: gwIP, SrcPort: 1, DstPort: 2}))
	nw.SendFrame(b.UDPPacket(packet.UDPSpec{SrcMAC: devMAC, DstMAC: cloudMAC, SrcIP: devIP, DstIP: cloudIP, SrcPort: 1, DstPort: 2}))
	nw.Clock.Advance(time.Second)
	if wanAt.Sub(simclock.Epoch) < 10*lanAt.Sub(simclock.Epoch) {
		t.Fatalf("JP latency %v not >> LAN latency %v", wanAt.Sub(simclock.Epoch), lanAt.Sub(simclock.Epoch))
	}
}

func TestTapSeesAllFrames(t *testing.T) {
	nw := newNet()
	frames := 0
	nw.Tap(func([]byte, time.Time) { frames++ })
	nw.Attach(&Node{Name: "dev", MAC: devMAC, IP: devIP, Loc: LocLAN})
	var b packet.Builder
	for i := 0; i < 5; i++ {
		nw.SendFrame(b.UDPPacket(packet.UDPSpec{SrcMAC: devMAC, DstMAC: gwMAC, SrcIP: devIP, DstIP: gwIP, SrcPort: 1, DstPort: 2}))
	}
	if frames != 5 {
		t.Fatalf("tap saw %d frames", frames)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	nw := newNet()
	nw.Attach(&Node{Name: "a", MAC: devMAC, IP: devIP, Loc: LocLAN})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate MAC attach did not panic")
		}
	}()
	nw.Attach(&Node{Name: "b", MAC: devMAC, IP: gwIP, Loc: LocLAN})
}

func TestLossDropsFrames(t *testing.T) {
	nw := newNet()
	nw.SetProfile(LocLAN, LocLAN, PathProfile{OneWay: time.Millisecond, Loss: 1.0})
	hits := 0
	nw.Attach(&Node{Name: "a", MAC: devMAC, IP: devIP, Loc: LocLAN})
	nw.Attach(&Node{Name: "b", MAC: gwMAC, IP: gwIP, Loc: LocLAN,
		Recv: func(*Node, []byte, time.Time) { hits++ }})
	var b packet.Builder
	nw.SendFrame(b.UDPPacket(packet.UDPSpec{SrcMAC: devMAC, DstMAC: gwMAC, SrcIP: devIP, DstIP: gwIP, SrcPort: 1, DstPort: 2}))
	nw.Clock.Advance(time.Second)
	if hits != 0 {
		t.Fatal("frame delivered despite 100% loss")
	}
}

// Full routed path: device -> gateway -> cloud and back.
func TestGatewayRoutesToCloudAndBack(t *testing.T) {
	nw := newNet()
	gw := NewGateway(nw, "router", gwMAC, gwIP)
	gw.ARP.Learn(devIP, devMAC)

	var deviceGot, cloudGot [][]byte
	nw.Attach(&Node{Name: "device", MAC: devMAC, IP: devIP, Loc: LocLAN,
		Recv: func(_ *Node, f []byte, _ time.Time) { deviceGot = append(deviceGot, f) }})
	nw.Attach(&Node{Name: "cloud", MAC: cloudMAC, IP: cloudIP, Loc: LocCloudUS,
		Recv: func(_ *Node, f []byte, _ time.Time) { cloudGot = append(cloudGot, f) }})

	var b packet.Builder
	// Device -> cloud via the gateway MAC.
	nw.SendFrame(b.TCPPacket(packet.TCPSpec{SrcMAC: devMAC, DstMAC: gwMAC,
		SrcIP: devIP, DstIP: cloudIP, SrcPort: 40000, DstPort: 443, Flags: packet.TCPFlagSYN}))
	nw.Clock.Advance(time.Second)
	if len(cloudGot) != 1 {
		t.Fatalf("cloud received %d frames", len(cloudGot))
	}
	p := packet.Decode(cloudGot[0], packet.CaptureInfo{})
	if p.Ethernet().SrcMAC != gwMAC || p.Ethernet().DstMAC != cloudMAC {
		t.Fatalf("forwarded MACs = %v -> %v", p.Ethernet().SrcMAC, p.Ethernet().DstMAC)
	}
	if p.IPv4().SrcIP != devIP {
		t.Fatal("IP header rewritten unexpectedly")
	}

	// Cloud -> device back through the gateway.
	nw.SendFrame(b.TCPPacket(packet.TCPSpec{SrcMAC: cloudMAC, DstMAC: gwMAC,
		SrcIP: cloudIP, DstIP: devIP, SrcPort: 443, DstPort: 40000, Flags: packet.TCPFlagSYN | packet.TCPFlagACK}))
	nw.Clock.Advance(time.Second)
	if len(deviceGot) != 1 {
		t.Fatalf("device received %d frames", len(deviceGot))
	}
}

// The paper's interception vector: poison the gateway so inbound IoT frames
// detour through the proxy node.
func TestARPSpoofDivertsInboundTraffic(t *testing.T) {
	nw := newNet()
	gw := NewGateway(nw, "router", gwMAC, gwIP)
	gw.ARP.Learn(devIP, devMAC)

	proxyMAC := spyMAC
	proxyGot := 0
	deviceGot := 0
	nw.Attach(&Node{Name: "device", MAC: devMAC, IP: devIP, Loc: LocLAN,
		Recv: func(*Node, []byte, time.Time) { deviceGot++ }})
	nw.Attach(&Node{Name: "proxy", MAC: proxyMAC, IP: netip.MustParseAddr("192.168.1.2"), Loc: LocLAN,
		Recv: func(*Node, []byte, time.Time) { proxyGot++ }})
	nw.Attach(&Node{Name: "cloud", MAC: cloudMAC, IP: cloudIP, Loc: LocCloudUS})

	// Proxy poisons the gateway: "devIP is at proxyMAC".
	sp := &intercept.Spoofer{ProxyMAC: proxyMAC, GatewayIP: gwIP}
	frames := sp.PoisonFrames(devIP, devMAC, gwMAC)
	nw.SendFrame(frames[1]) // the gateway-directed spoof
	nw.Clock.Advance(time.Second)

	// Cloud sends a command toward the device.
	var b packet.Builder
	nw.SendFrame(b.TCPPacket(packet.TCPSpec{SrcMAC: cloudMAC, DstMAC: gwMAC,
		SrcIP: cloudIP, DstIP: devIP, SrcPort: 443, DstPort: 40000, Flags: packet.TCPFlagPSH | packet.TCPFlagACK,
		Payload: []byte("turn-on")}))
	nw.Clock.Advance(time.Second)

	if proxyGot != 1 {
		t.Fatalf("proxy intercepted %d frames, want 1", proxyGot)
	}
	if deviceGot != 0 {
		t.Fatalf("device received %d frames directly, want 0 (diverted)", deviceGot)
	}
}

func TestNodeLookups(t *testing.T) {
	nw := newNet()
	n := &Node{Name: "dev", MAC: devMAC, IP: devIP, Loc: LocLAN}
	nw.Attach(n)
	if got, ok := nw.NodeByIP(devIP); !ok || got != n {
		t.Fatal("NodeByIP failed")
	}
	if got, ok := nw.NodeByMAC(devMAC); !ok || got != n {
		t.Fatal("NodeByMAC failed")
	}
	if _, ok := nw.NodeByIP(cloudIP); ok {
		t.Fatal("unknown IP resolved")
	}
}

func TestDefaultProfilesSymmetric(t *testing.T) {
	p := DefaultProfiles()
	for k, v := range p {
		rev, ok := p[[2]Location{k[1], k[0]}]
		if !ok || rev != v {
			t.Fatalf("profile %v not symmetric", k)
		}
	}
}
