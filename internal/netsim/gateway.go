package netsim

import (
	"net/netip"
	"time"

	"fiat/internal/intercept"
	"fiat/internal/packet"
)

// Gateway is the home router: it bridges the LAN to the cloud locations.
// Outbound frames addressed to it at L2 are re-addressed to the cloud node
// owning the destination IP; inbound cloud frames are re-addressed into the
// LAN using the gateway's ARP table — which an ARP spoofer can poison, the
// paper's interception vector.
type Gateway struct {
	Node *Node
	ARP  *intercept.ARPTable
	nw   *Network
}

// NewGateway attaches a gateway to the network.
func NewGateway(nw *Network, name string, mac packet.MAC, ip netip.Addr) *Gateway {
	g := &Gateway{ARP: intercept.NewARPTable(), nw: nw}
	g.Node = &Node{Name: name, MAC: mac, IP: ip, Loc: LocLAN, Recv: g.recv}
	nw.Attach(g.Node)
	return g
}

func (g *Gateway) recv(self *Node, frame []byte, now time.Time) {
	p := packet.Decode(frame, packet.CaptureInfo{Timestamp: now})
	if p.ARP() != nil {
		g.ARP.Observe(p)
		return
	}
	ip := p.IPv4()
	if ip == nil {
		return
	}
	if dst, ok := g.nw.NodeByIP(ip.DstIP); ok && dst.Loc != LocLAN {
		// LAN -> WAN: forward toward the cloud node.
		g.forward(frame, self.MAC, dst.MAC)
		return
	}
	// WAN -> LAN (or LAN -> LAN routed through us): resolve via ARP.
	if mac, ok := g.ARP.Lookup(ip.DstIP); ok {
		g.forward(frame, self.MAC, mac)
	}
}

func (g *Gateway) forward(frame []byte, srcMAC, dstMAC packet.MAC) {
	out := make([]byte, len(frame))
	copy(out, frame)
	copy(out[0:6], dstMAC[:])
	copy(out[6:12], srcMAC[:])
	g.nw.SendFrame(out)
}
