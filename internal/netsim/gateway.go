package netsim

import (
	"net/netip"
	"time"

	"fiat/internal/intercept"
	"fiat/internal/packet"
)

// BatchInspector is the on-path access-control hook: it decides a batch of
// frames traversing the gateway at one virtual instant, returning one
// allow/drop verdict per frame. core.FrameGate adapts the sharded proxy's
// ProcessBatch to this interface, so a gateway fronting a whole smart home
// hands the engine device-parallel batches instead of single packets.
type BatchInspector interface {
	InspectBatch(frames [][]byte, now time.Time) []bool
}

// Gateway is the home router: it bridges the LAN to the cloud locations.
// Outbound frames addressed to it at L2 are re-addressed to the cloud node
// owning the destination IP; inbound cloud frames are re-addressed into the
// LAN using the gateway's ARP table — which an ARP spoofer can poison, the
// paper's interception vector.
//
// With an inspector installed (SetInspector), forwarding runs in batches:
// frames arriving at the same virtual instant are buffered and decided
// together; the buffer flushes when time advances past the instant, when it
// reaches the configured batch size, or on an explicit Flush. All gateway
// callbacks run on the virtual-clock goroutine, so the buffer needs no lock.
type Gateway struct {
	Node *Node
	ARP  *intercept.ARPTable
	nw   *Network

	insp      BatchInspector
	maxBatch  int
	pending   []gwPending
	pendingAt time.Time

	// BatchStats counts inspector activity: batches flushed, frames
	// inspected, frames dropped by verdict.
	BatchStats struct {
		Batches, Frames, Dropped int
	}
}

type gwPending struct {
	frame    []byte
	src, dst packet.MAC
}

// NewGateway attaches a gateway to the network.
func NewGateway(nw *Network, name string, mac packet.MAC, ip netip.Addr) *Gateway {
	g := &Gateway{ARP: intercept.NewARPTable(), nw: nw}
	g.Node = &Node{Name: name, MAC: mac, IP: ip, Loc: LocLAN, Recv: g.recv}
	nw.Attach(g.Node)
	return g
}

// SetInspector installs the batch access-control hook. maxBatch bounds how
// many same-instant frames accumulate before a forced flush (<= 0 selects
// 64). Passing nil restores plain immediate forwarding (any buffered frames
// are flushed first).
func (g *Gateway) SetInspector(insp BatchInspector, maxBatch int) {
	g.Flush()
	if maxBatch <= 0 {
		maxBatch = 64
	}
	g.insp = insp
	g.maxBatch = maxBatch
}

func (g *Gateway) recv(self *Node, frame []byte, now time.Time) {
	p := packet.Decode(frame, packet.CaptureInfo{Timestamp: now})
	if p.ARP() != nil {
		g.ARP.Observe(p)
		return
	}
	ip := p.IPv4()
	if ip == nil {
		return
	}
	if dst, ok := g.nw.NodeByIP(ip.DstIP); ok && dst.Loc != LocLAN {
		// LAN -> WAN: forward toward the cloud node.
		g.enqueue(frame, self.MAC, dst.MAC, now)
		return
	}
	// WAN -> LAN (or LAN -> LAN routed through us): resolve via ARP.
	if mac, ok := g.ARP.Lookup(ip.DstIP); ok {
		g.enqueue(frame, self.MAC, mac, now)
	}
}

// enqueue routes one forwardable frame through the inspector batch (or
// straight out when no inspector is installed). A frame arriving at a later
// instant first flushes the previous instant's batch, so inspected frames
// never pass one another.
func (g *Gateway) enqueue(frame []byte, src, dst packet.MAC, now time.Time) {
	if g.insp == nil {
		g.forward(frame, src, dst)
		return
	}
	if len(g.pending) > 0 && !now.Equal(g.pendingAt) {
		g.Flush()
	}
	g.pendingAt = now
	g.pending = append(g.pending, gwPending{frame: frame, src: src, dst: dst})
	if len(g.pending) >= g.maxBatch {
		g.Flush()
	}
}

// Flush decides and forwards any buffered frames. Call it after the last
// event of a simulation step: the gateway cannot know no further same-instant
// frames are coming.
func (g *Gateway) Flush() {
	if g.insp == nil || len(g.pending) == 0 {
		return
	}
	pend := g.pending
	g.pending = nil
	frames := make([][]byte, len(pend))
	for i := range pend {
		frames[i] = pend[i].frame
	}
	allow := g.insp.InspectBatch(frames, g.pendingAt)
	g.BatchStats.Batches++
	g.BatchStats.Frames += len(pend)
	for i, pd := range pend {
		if i < len(allow) && !allow[i] {
			g.BatchStats.Dropped++
			continue
		}
		g.forward(pd.frame, pd.src, pd.dst)
	}
}

func (g *Gateway) forward(frame []byte, srcMAC, dstMAC packet.MAC) {
	out := make([]byte, len(frame))
	copy(out, frame)
	copy(out[0:6], dstMAC[:])
	copy(out[6:12], srcMAC[:])
	g.nw.SendFrame(out)
}
