package netsim

import (
	"time"
)

// TCPModel simulates the sender-side retransmission behavior FIAT relies on
// in §6: when the proxy holds packets awaiting a verdict, the IoT cloud's
// TCP stack treats the silence as loss and retransmits with exponential
// backoff; once the verdict releases the flow, the exchange completes. The
// command fails only if the companion app's own response timeout fires
// first. This turns the paper's closing experiment ("how slow can FIAT
// afford to be") into a mechanism rather than an assumption.
type TCPModel struct {
	// InitialRTO is the first retransmission timeout (RFC 6298 floor 1 s).
	InitialRTO time.Duration
	// MaxRetries bounds the retransmissions before the connection aborts.
	MaxRetries int
	// RTT is the path round-trip time.
	RTT time.Duration
}

// DefaultTCPModel returns RFC-typical parameters for a WAN path.
func DefaultTCPModel(rtt time.Duration) TCPModel {
	return TCPModel{InitialRTO: time.Second, MaxRetries: 6, RTT: rtt}
}

// DeliveryOutcome summarizes one held-then-released exchange.
type DeliveryOutcome struct {
	// Delivered reports whether TCP recovered the exchange at all.
	Delivered bool
	// CompletionTime is when the receiver finally has the data, measured
	// from the original send.
	CompletionTime time.Duration
	// Retransmits counts the sender's retransmissions.
	Retransmits int
}

// DeliverWithHold computes the outcome when the network (FIAT's verdict
// queue) holds the first copy and all retransmissions for holdFor, then
// releases them. Releases are modeled at the instant the verdict arrives:
// every copy sent before the release is delivered together at
// release+RTT/2; a copy sent after the release arrives normally.
func (m TCPModel) DeliverWithHold(holdFor time.Duration) DeliveryOutcome {
	rto := m.InitialRTO
	if rto <= 0 {
		rto = time.Second
	}
	// Send schedule: original at 0, retransmissions with doubling RTO
	// (Karn's algorithm); the sender aborts one final RTO after the last
	// retransmission if still unacknowledged.
	sendTimes := []time.Duration{0}
	t := time.Duration(0)
	for i := 0; i < m.MaxRetries; i++ {
		t += rto
		sendTimes = append(sendTimes, t)
		rto *= 2
	}
	abortAt := t + rto

	oneWay := m.RTT / 2
	// The first copy reaches the receiver once the verdict releases the
	// flow (or immediately when there is no hold); its ACK returns one
	// more one-way later.
	arrival := oneWay
	if holdFor > 0 {
		arrival = holdFor + oneWay
	}
	ackAt := arrival + oneWay
	if ackAt > abortAt {
		return DeliveryOutcome{Delivered: false, Retransmits: m.MaxRetries}
	}
	// Retransmissions keep firing until the ACK lands.
	retrans := 0
	for _, sent := range sendTimes[1:] {
		if sent < ackAt {
			retrans++
		}
	}
	return DeliveryOutcome{Delivered: true, CompletionTime: arrival, Retransmits: retrans}
}

// CommandSucceeds reports whether an IoT command survives a verdict hold of
// holdFor given the controlling app's response timeout.
func (m TCPModel) CommandSucceeds(holdFor, appTimeout time.Duration) bool {
	out := m.DeliverWithHold(holdFor)
	return out.Delivered && out.CompletionTime+m.RTT <= appTimeout
}
