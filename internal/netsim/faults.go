package netsim

import (
	"time"

	"fiat/internal/simclock"
)

// This file is the fault-injection fabric: a deterministic FaultPlan per
// directed path that composes with the benign PathProfile. The profile
// models the calibrated *average* path (latency, jitter, independent loss);
// the plan models the *adverse* episodes the mobile/VPN scenarios hit —
// correlated burst loss, duplication, reordering, corruption, and scheduled
// link-down windows. Paths with no plan behave exactly as before: no extra
// RNG draws, no behavior change, so the calibrated experiments are
// unaffected by default.

// GilbertElliott is the two-state burst-loss model: the channel flips
// between a good and a bad state per delivery, each with its own drop
// probability. It produces the correlated loss runs that independent
// Bernoulli loss (PathProfile.Loss) cannot.
type GilbertElliott struct {
	// PGoodBad is the per-delivery probability of entering the bad state.
	PGoodBad float64
	// PBadGood is the per-delivery probability of recovering.
	PBadGood float64
	// LossGood and LossBad are the drop probabilities in each state.
	LossGood float64
	LossBad  float64
}

// MeanLoss returns the stationary average drop rate of the model, useful
// for calibrating scenarios ("30% burst loss").
func (g GilbertElliott) MeanLoss() float64 {
	den := g.PGoodBad + g.PBadGood
	if den == 0 {
		return g.LossGood
	}
	pBad := g.PGoodBad / den
	return (1-pBad)*g.LossGood + pBad*g.LossBad
}

// Outage is a scheduled link-down window: every delivery whose send instant
// falls inside [From, To) is dropped. Windows are driven by the virtual
// clock, so a partition heals at a byte-reproducible instant.
type Outage struct {
	From, To time.Time
}

// FaultPlan is the fault schedule of one directed path.
type FaultPlan struct {
	// Burst enables the Gilbert–Elliott correlated-loss model.
	Burst *GilbertElliott
	// DupProb duplicates a delivery with an extra, later copy.
	DupProb float64
	// ReorderProb holds a delivery back by up to ReorderDelay, letting
	// later frames overtake it.
	ReorderProb  float64
	ReorderDelay time.Duration
	// CorruptProb flips one random bit of the delivered copy (the tap and
	// any duplicate copies see the original bytes).
	CorruptProb float64
	// Outages are the scheduled link-down windows.
	Outages []Outage
}

// FaultStats counts fault-fabric activity across all paths.
type FaultStats struct {
	BurstDropped  int
	OutageDropped int
	Duplicated    int
	Reordered     int
	Corrupted     int
}

// faultState is the per-directed-path runtime state of a plan: its own
// forked RNG stream (so installing a plan on one path does not perturb the
// draws of any other path or of the base network) and the current
// Gilbert–Elliott channel state.
type faultState struct {
	plan FaultPlan
	rng  *simclock.RNG
	bad  bool
}

// SetFaultPlan installs (or, with nil, clears) a fault plan on both
// directions of the a<->b path. Each direction gets independent state and
// an independent RNG stream keyed by the directed pair.
func (nw *Network) SetFaultPlan(a, b Location, plan *FaultPlan) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.setFaultLocked(a, b, plan)
	if a != b {
		nw.setFaultLocked(b, a, plan)
	}
}

func (nw *Network) setFaultLocked(from, to Location, plan *FaultPlan) {
	k := [2]Location{from, to}
	if plan == nil {
		delete(nw.faults, k)
		return
	}
	cp := *plan
	cp.Outages = append([]Outage(nil), plan.Outages...)
	nw.faults[k] = &faultState{
		plan: cp,
		rng:  nw.rng.Fork("fault:" + string(from) + ">" + string(to)),
	}
}

// Partition schedules a link-down window on both directions of the a<->b
// path, creating an empty fault plan if none is installed. It composes with
// any burst/duplication/corruption already configured.
func (nw *Network) Partition(a, b Location, from, to time.Time) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	add := func(x, y Location) {
		k := [2]Location{x, y}
		fs, ok := nw.faults[k]
		if !ok {
			fs = &faultState{rng: nw.rng.Fork("fault:" + string(x) + ">" + string(y))}
			nw.faults[k] = fs
		}
		fs.plan.Outages = append(fs.plan.Outages, Outage{From: from, To: to})
	}
	add(a, b)
	if a != b {
		add(b, a)
	}
}

// FaultStats returns a copy of the fault-activity counters.
func (nw *Network) FaultStats() FaultStats {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.faultStats
}

// faultFor resolves the installed plan state of one directed path.
func (nw *Network) faultFor(from, to Location) *faultState {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.faults[[2]Location{from, to}]
}

// judgeFault samples the fault plan for one delivery: whether the frame is
// dropped outright, the (possibly reorder-delayed) delivery delay, and the
// delays of any duplicate copies. buf is the delivery copy and is mutated
// in place on corruption. The draw order (outage, burst, dup, reorder,
// corrupt) is fixed so a seeded schedule replays identically.
func (nw *Network) judgeFault(fs *faultState, sent time.Time, d time.Duration, buf []byte) (drop bool, delay time.Duration, dups []time.Duration) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	p := &fs.plan
	for _, o := range p.Outages {
		if !sent.Before(o.From) && sent.Before(o.To) {
			nw.faultStats.OutageDropped++
			nw.mx.outageDropped.Inc()
			return true, d, nil
		}
	}
	if g := p.Burst; g != nil {
		if fs.bad {
			if fs.rng.Bernoulli(g.PBadGood) {
				fs.bad = false
			}
		} else if fs.rng.Bernoulli(g.PGoodBad) {
			fs.bad = true
		}
		loss := g.LossGood
		if fs.bad {
			loss = g.LossBad
		}
		if loss > 0 && fs.rng.Bernoulli(loss) {
			nw.faultStats.BurstDropped++
			nw.mx.burstDropped.Inc()
			return true, d, nil
		}
	}
	if p.DupProb > 0 && fs.rng.Bernoulli(p.DupProb) {
		nw.faultStats.Duplicated++
		nw.mx.duplicated.Inc()
		dups = append(dups, d+time.Duration(fs.rng.Int63n(int64(d)+1)))
	}
	if p.ReorderProb > 0 && p.ReorderDelay > 0 && fs.rng.Bernoulli(p.ReorderProb) {
		nw.faultStats.Reordered++
		nw.mx.reordered.Inc()
		d += time.Duration(fs.rng.Int63n(int64(p.ReorderDelay)))
	}
	if p.CorruptProb > 0 && len(buf) > 0 && fs.rng.Bernoulli(p.CorruptProb) {
		nw.faultStats.Corrupted++
		nw.mx.corrupted.Inc()
		bit := fs.rng.Intn(len(buf) * 8)
		buf[bit/8] ^= 1 << (bit % 8)
	}
	return false, d, dups
}
