package dnssim

import (
	"bytes"
	"net/netip"
	"testing"
)

// fuzzSeedMessages builds a corpus of well-formed messages covering every
// record type the codec speaks, so the fuzzer starts from valid structure
// and mutates toward the edges (truncation, pointer loops, long labels).
func fuzzSeedMessages(f *testing.F) {
	msgs := []*Message{
		{ID: 1, Questions: []Question{{Name: "plug.cloud.example", Type: TypeA, Class: ClassIN}}},
		{
			ID: 2, Response: true,
			Questions: []Question{{Name: "plug.cloud.example", Type: TypeA, Class: ClassIN}},
			Answers: []ResourceRecord{{
				Name: "plug.cloud.example", Type: TypeA, Class: ClassIN, TTL: 300,
				Addr: netip.MustParseAddr("52.1.1.1"),
			}},
		},
		{
			ID: 3, Response: true,
			Questions: []Question{{Name: "1.1.1.52.in-addr.arpa", Type: TypePTR, Class: ClassIN}},
			Answers: []ResourceRecord{{
				Name: "1.1.1.52.in-addr.arpa", Type: TypePTR, Class: ClassIN, TTL: 60,
				Target: "plug.cloud.example",
			}},
		},
		{ID: 4, Response: true, RCode: 3, Questions: []Question{{Name: "gone.example", Type: TypeA, Class: ClassIN}}},
		{ID: 5}, // empty header-only message
	}
	for _, m := range msgs {
		b, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// Hand-built nasties: a compression pointer to the header, a pointer
	// loop, and a bare truncated header.
	f.Add([]byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 0x00, 0, 1, 0, 1})
	f.Add([]byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 0x0c, 0, 1, 0, 1})
	f.Add([]byte{0, 1, 0, 0, 0, 0})
}

// FuzzDecodeMessage fuzzes the DNS wire-format parser for crashes and for
// re-encode stability: DecodeMessage may accept liberally (it is a parser of
// hostile input), but whatever it accepts and Encode can express must
// round-trip — decode(enc) succeeds and re-encodes to the identical bytes.
// A parse discrepancy here is exactly the class of bug that would let two
// observers (resolver vs rule table) disagree about a PortLess flow key.
func FuzzDecodeMessage(f *testing.F) {
	fuzzSeedMessages(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return // rejected input is fine; panics/hangs are the bug
		}
		enc, err := m.Encode()
		if err != nil {
			// Decode is more liberal than Encode (unknown record
			// types, names only expressible with compression).
			return
		}
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("decode(encode(m)) failed: %v\nencoded: %x", err, enc)
		}
		enc2, err := m2.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode not stable across a decode round trip:\nfirst:  %x\nsecond: %x", enc, enc2)
		}
		// Spot-check semantic stability of the fields the resolver keys
		// on.
		if m2.ID != m.ID || m2.Response != m.Response || m2.RCode != m.RCode {
			t.Fatalf("header fields drifted: %+v vs %+v", m, m2)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) {
			t.Fatalf("section counts drifted: %+v vs %+v", m, m2)
		}
	})
}
