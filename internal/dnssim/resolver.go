package dnssim

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"fiat/internal/simclock"
)

// Zone is an authoritative name↔address database: the simulated IoT cloud.
// It answers forward (A) and reverse (PTR) queries. A single zone instance
// backs the whole simulation, mirroring the paper's single recursive
// resolver in Illinois ("the same IP will correspond to the same domain
// name").
type Zone struct {
	mu      sync.RWMutex
	forward map[string][]netip.Addr // name -> addresses
	reverse map[netip.Addr]string   // address -> canonical name
	aliases map[string]string       // alias -> canonical name
}

// NewZone returns an empty zone.
func NewZone() *Zone {
	return &Zone{
		forward: make(map[string][]netip.Addr),
		reverse: make(map[netip.Addr]string),
		aliases: make(map[string]string),
	}
}

// Add registers name -> addr. The first name registered for addr becomes its
// canonical (PTR) name; later names behave like aliases, matching the
// paper's observation that reverse lookups lose alias detail.
func (z *Zone) Add(name string, addr netip.Addr) {
	name = canon(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	z.forward[name] = append(z.forward[name], addr)
	if _, ok := z.reverse[addr]; !ok {
		z.reverse[addr] = name
	} else if z.reverse[addr] != name {
		z.aliases[name] = z.reverse[addr]
	}
}

// Lookup returns the addresses for name.
func (z *Zone) Lookup(name string) ([]netip.Addr, error) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	addrs, ok := z.forward[canon(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNXDomain, name)
	}
	out := make([]netip.Addr, len(addrs))
	copy(out, addrs)
	return out, nil
}

// ReverseLookup returns the canonical name for addr.
func (z *Zone) ReverseLookup(addr netip.Addr) (string, error) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	name, ok := z.reverse[addr]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNXDomain, addr)
	}
	return name, nil
}

// Names returns all registered names, sorted, for deterministic iteration.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]string, 0, len(z.forward))
	for n := range z.forward {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HandleQuery answers one wire-format query against the zone, producing a
// wire-format response (NXDOMAIN rcode 3 on miss).
func (z *Zone) HandleQuery(query []byte) ([]byte, error) {
	q, err := DecodeMessage(query)
	if err != nil {
		return nil, err
	}
	resp := &Message{ID: q.ID, Response: true, Questions: q.Questions}
	for _, question := range q.Questions {
		switch question.Type {
		case TypeA:
			addrs, err := z.Lookup(question.Name)
			if err != nil {
				resp.RCode = 3
				continue
			}
			for _, a := range addrs {
				resp.Answers = append(resp.Answers, ResourceRecord{
					Name: question.Name, Type: TypeA, Class: ClassIN, TTL: 300, Addr: a,
				})
			}
		case TypePTR:
			addr, ok := parseReverseName(question.Name)
			if !ok {
				resp.RCode = 3
				continue
			}
			name, err := z.ReverseLookup(addr)
			if err != nil {
				resp.RCode = 3
				continue
			}
			resp.Answers = append(resp.Answers, ResourceRecord{
				Name: question.Name, Type: TypePTR, Class: ClassIN, TTL: 300, Target: name,
			})
		default:
			resp.RCode = 4 // not implemented
		}
	}
	return resp.Encode()
}

func parseReverseName(name string) (netip.Addr, bool) {
	name = canon(name)
	const suffix = ".in-addr.arpa"
	if !strings.HasSuffix(name, suffix) {
		return netip.Addr{}, false
	}
	parts := strings.Split(strings.TrimSuffix(name, suffix), ".")
	if len(parts) != 4 {
		return netip.Addr{}, false
	}
	var b [4]byte
	for i, p := range parts {
		var v int
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil || v < 0 || v > 255 {
			return netip.Addr{}, false
		}
		b[3-i] = byte(v)
	}
	return netip.AddrFrom4(b), true
}

func canon(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// Resolver is a caching stub resolver in front of a Zone, the component
// FIAT's proxy uses to map destination IPs to domains for PortLess
// bucketing. Cache entries respect TTLs against the injected clock.
type Resolver struct {
	zone  *Zone
	clock simclock.Clock
	ttl   time.Duration

	mu       sync.Mutex
	fwdCache map[string]cacheEntry[[]netip.Addr]
	revCache map[netip.Addr]cacheEntry[string]

	// Queries counts zone round-trips (cache misses), exposed for tests
	// and for the latency accounting in the evaluation harness.
	Queries int
}

type cacheEntry[T any] struct {
	val     T
	expires time.Time
}

// NewResolver builds a resolver over zone with a 5-minute cache TTL.
func NewResolver(zone *Zone, clock simclock.Clock) *Resolver {
	return &Resolver{
		zone:     zone,
		clock:    clock,
		ttl:      5 * time.Minute,
		fwdCache: make(map[string]cacheEntry[[]netip.Addr]),
		revCache: make(map[netip.Addr]cacheEntry[string]),
	}
}

// Lookup resolves name to addresses, consulting the cache first.
func (r *Resolver) Lookup(name string) ([]netip.Addr, error) {
	name = canon(name)
	now := r.clock.Now()
	r.mu.Lock()
	if e, ok := r.fwdCache[name]; ok && now.Before(e.expires) {
		r.mu.Unlock()
		return e.val, nil
	}
	r.mu.Unlock()
	addrs, err := r.zone.Lookup(name)
	r.mu.Lock()
	r.Queries++
	if err == nil {
		r.fwdCache[name] = cacheEntry[[]netip.Addr]{val: addrs, expires: now.Add(r.ttl)}
	}
	r.mu.Unlock()
	return addrs, err
}

// ReverseLookup resolves addr to its canonical name, consulting the cache.
func (r *Resolver) ReverseLookup(addr netip.Addr) (string, error) {
	now := r.clock.Now()
	r.mu.Lock()
	if e, ok := r.revCache[addr]; ok && now.Before(e.expires) {
		r.mu.Unlock()
		return e.val, nil
	}
	r.mu.Unlock()
	name, err := r.zone.ReverseLookup(addr)
	r.mu.Lock()
	r.Queries++
	if err == nil {
		r.revCache[addr] = cacheEntry[string]{val: name, expires: now.Add(r.ttl)}
	}
	r.mu.Unlock()
	return name, err
}

// DomainFor maps an address to a domain for PortLess bucketing. On
// resolution failure it falls back to the literal address, which is at
// least as precise as using the IP directly (the paper's argument).
func (r *Resolver) DomainFor(addr netip.Addr) string {
	if name, err := r.ReverseLookup(addr); err == nil {
		return name
	}
	return addr.String()
}
