package dnssim

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"fiat/internal/simclock"
)

func TestEncodeDecodeQuery(t *testing.T) {
	m := &Message{
		ID:        0xbeef,
		Questions: []Question{{Name: "nexus.echo.amazon.example", Type: TypeA, Class: ClassIN}},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0xbeef || got.Response || len(got.Questions) != 1 {
		t.Fatalf("decoded = %+v", got)
	}
	if got.Questions[0].Name != "nexus.echo.amazon.example" {
		t.Fatalf("name = %q", got.Questions[0].Name)
	}
}

func TestEncodeDecodeAResponse(t *testing.T) {
	addr := netip.MustParseAddr("52.94.233.10")
	m := &Message{
		ID: 7, Response: true,
		Questions: []Question{{Name: "api.wyze.example", Type: TypeA, Class: ClassIN}},
		Answers: []ResourceRecord{
			{Name: "api.wyze.example", Type: TypeA, Class: ClassIN, TTL: 300, Addr: addr},
		},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || len(got.Answers) != 1 || got.Answers[0].Addr != addr {
		t.Fatalf("decoded = %+v", got)
	}
	if got.Answers[0].TTL != 300 {
		t.Fatalf("TTL = %d", got.Answers[0].TTL)
	}
}

func TestEncodeDecodePTR(t *testing.T) {
	m := &Message{
		ID: 9, Response: true,
		Questions: []Question{{Name: "10.233.94.52.in-addr.arpa", Type: TypePTR, Class: ClassIN}},
		Answers: []ResourceRecord{
			{Name: "10.233.94.52.in-addr.arpa", Type: TypePTR, Class: ClassIN, TTL: 60, Target: "api.wyze.example"},
		},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Target != "api.wyze.example" {
		t.Fatalf("target = %q", got.Answers[0].Target)
	}
}

func TestDecodeCompressedName(t *testing.T) {
	// Hand-built response using a compression pointer for the answer name.
	wire := []byte{
		0x00, 0x01, 0x81, 0x80, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
		// question: a.b
		1, 'a', 1, 'b', 0, 0x00, 0x01, 0x00, 0x01,
		// answer name: pointer to offset 12
		0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x3c, 0x00, 0x04, 1, 2, 3, 4,
	}
	m, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "a.b" {
		t.Fatalf("name = %q", m.Answers[0].Name)
	}
	if m.Answers[0].Addr != netip.MustParseAddr("1.2.3.4") {
		t.Fatalf("addr = %v", m.Answers[0].Addr)
	}
}

func TestDecodePointerLoopRejected(t *testing.T) {
	wire := make([]byte, 14)
	wire[5] = 1 // one question
	wire[12] = 0xc0
	wire[13] = 0x0c // points at itself
	if _, err := DecodeMessage(wire); err == nil {
		t.Fatal("pointer loop not rejected")
	}
}

func TestBadNames(t *testing.T) {
	long := strings.Repeat("a", 64)
	m := &Message{Questions: []Question{{Name: long + ".example", Type: TypeA, Class: ClassIN}}}
	if _, err := m.Encode(); err == nil {
		t.Fatal("label > 63 accepted")
	}
	m = &Message{Questions: []Question{{Name: strings.Repeat("abcdefg.", 40), Type: TypeA, Class: ClassIN}}}
	if _, err := m.Encode(); err == nil {
		t.Fatal("name > 253 accepted")
	}
}

func TestReverseName(t *testing.T) {
	a := netip.MustParseAddr("52.94.233.10")
	if got := ReverseName(a); got != "10.233.94.52.in-addr.arpa" {
		t.Fatalf("ReverseName = %q", got)
	}
	addr, ok := parseReverseName("10.233.94.52.in-addr.arpa")
	if !ok || addr != a {
		t.Fatalf("parseReverseName = %v, %v", addr, ok)
	}
}

func TestReverseNameRoundTrip(t *testing.T) {
	f := func(b [4]byte) bool {
		a := netip.AddrFrom4(b)
		got, ok := parseReverseName(ReverseName(a))
		return ok && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newTestZone() *Zone {
	z := NewZone()
	z.Add("device-metrics.amazon.example", netip.MustParseAddr("52.1.1.1"))
	z.Add("api.wyze.example", netip.MustParseAddr("52.2.2.2"))
	z.Add("clients.google.example", netip.MustParseAddr("142.250.0.1"))
	z.Add("clients.google.example", netip.MustParseAddr("142.250.0.2"))
	return z
}

func TestZoneLookup(t *testing.T) {
	z := newTestZone()
	addrs, err := z.Lookup("Clients.Google.Example.") // case + trailing dot
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 {
		t.Fatalf("addrs = %v", addrs)
	}
	if _, err := z.Lookup("nonexistent.example"); err == nil {
		t.Fatal("expected NXDOMAIN")
	}
}

func TestZoneReverse(t *testing.T) {
	z := newTestZone()
	name, err := z.ReverseLookup(netip.MustParseAddr("52.2.2.2"))
	if err != nil || name != "api.wyze.example" {
		t.Fatalf("reverse = %q, %v", name, err)
	}
}

func TestZoneAliasKeepsCanonicalPTR(t *testing.T) {
	z := NewZone()
	addr := netip.MustParseAddr("8.8.4.4")
	z.Add("canonical.example", addr)
	z.Add("alias.example", addr)
	name, err := z.ReverseLookup(addr)
	if err != nil || name != "canonical.example" {
		t.Fatalf("reverse = %q, %v (aliases must not override PTR)", name, err)
	}
}

func TestHandleQueryA(t *testing.T) {
	z := newTestZone()
	q := &Message{ID: 3, Questions: []Question{{Name: "api.wyze.example", Type: TypeA, Class: ClassIN}}}
	wire, _ := q.Encode()
	respWire, err := z.HandleQuery(wire)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeMessage(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 3 || !resp.Response || resp.RCode != 0 {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Addr != netip.MustParseAddr("52.2.2.2") {
		t.Fatalf("answers = %+v", resp.Answers)
	}
}

func TestHandleQueryNXDomain(t *testing.T) {
	z := newTestZone()
	q := &Message{ID: 4, Questions: []Question{{Name: "missing.example", Type: TypeA, Class: ClassIN}}}
	wire, _ := q.Encode()
	respWire, err := z.HandleQuery(wire)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := DecodeMessage(respWire)
	if resp.RCode != 3 {
		t.Fatalf("RCode = %d, want 3", resp.RCode)
	}
}

func TestHandleQueryPTR(t *testing.T) {
	z := newTestZone()
	q := &Message{ID: 5, Questions: []Question{{Name: ReverseName(netip.MustParseAddr("52.1.1.1")), Type: TypePTR, Class: ClassIN}}}
	wire, _ := q.Encode()
	respWire, err := z.HandleQuery(wire)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := DecodeMessage(respWire)
	if len(resp.Answers) != 1 || resp.Answers[0].Target != "device-metrics.amazon.example" {
		t.Fatalf("answers = %+v", resp.Answers)
	}
}

func TestResolverCaching(t *testing.T) {
	z := newTestZone()
	clock := simclock.NewVirtual()
	r := NewResolver(z, clock)
	for i := 0; i < 5; i++ {
		if _, err := r.Lookup("api.wyze.example"); err != nil {
			t.Fatal(err)
		}
	}
	if r.Queries != 1 {
		t.Fatalf("Queries = %d, want 1 (cache)", r.Queries)
	}
	clock.Advance(6 * time.Minute) // past TTL
	if _, err := r.Lookup("api.wyze.example"); err != nil {
		t.Fatal(err)
	}
	if r.Queries != 2 {
		t.Fatalf("Queries = %d, want 2 (expired)", r.Queries)
	}
}

func TestResolverReverseCaching(t *testing.T) {
	z := newTestZone()
	r := NewResolver(z, simclock.NewVirtual())
	a := netip.MustParseAddr("52.1.1.1")
	for i := 0; i < 3; i++ {
		name, err := r.ReverseLookup(a)
		if err != nil || name != "device-metrics.amazon.example" {
			t.Fatalf("reverse = %q, %v", name, err)
		}
	}
	if r.Queries != 1 {
		t.Fatalf("Queries = %d, want 1", r.Queries)
	}
}

func TestDomainForFallsBackToIP(t *testing.T) {
	z := newTestZone()
	r := NewResolver(z, simclock.NewVirtual())
	unknown := netip.MustParseAddr("203.0.113.99")
	if got := r.DomainFor(unknown); got != "203.0.113.99" {
		t.Fatalf("DomainFor = %q", got)
	}
	if got := r.DomainFor(netip.MustParseAddr("52.2.2.2")); got != "api.wyze.example" {
		t.Fatalf("DomainFor = %q", got)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(id uint16, a, b, c byte) bool {
		name := "h" + string([]byte{'a' + a%26}) + "." + string([]byte{'a' + b%26}) + "dev.example"
		addr := netip.AddrFrom4([4]byte{a, b, c, 1})
		m := &Message{
			ID: id, Response: true,
			Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
			Answers:   []ResourceRecord{{Name: name, Type: TypeA, Class: ClassIN, TTL: 60, Addr: addr}},
		}
		wire, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeMessage(wire)
		if err != nil {
			return false
		}
		return got.ID == id && got.Answers[0].Addr == addr && got.Questions[0].Name == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZoneNamesSorted(t *testing.T) {
	z := newTestZone()
	names := z.Names()
	if len(names) != 3 {
		t.Fatalf("Names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestDecodeMessageNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(120)
		data := make([]byte, n)
		rng.Read(data)
		_, _ = DecodeMessage(data) // must not panic
	}
}
