// Package dnssim implements the DNS substrate FIAT's "PortLess" flow
// definition depends on: a wire-format codec (queries/responses with A and
// PTR records), an authoritative zone describing the simulated IoT cloud
// names, and a caching resolver that performs forward and reverse lookups.
//
// The paper obtains domain names "either from DNS requests — when available
// in the trace — or via a reverse DNS lookup" against a fixed recursive
// resolver (§2.1 footnote). Both paths exist here.
package dnssim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Record types supported by the codec.
const (
	TypeA   uint16 = 1
	TypePTR uint16 = 12
)

// ClassIN is the Internet class.
const ClassIN uint16 = 1

// Codec errors.
var (
	ErrTruncated  = errors.New("dnssim: truncated message")
	ErrBadName    = errors.New("dnssim: malformed name")
	ErrNXDomain   = errors.New("dnssim: no such domain")
	ErrNameTooBig = errors.New("dnssim: name exceeds 255 octets")
)

// Question is one DNS question.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// ResourceRecord is one answer record. For A records Addr is set; for PTR
// records Target is set.
type ResourceRecord struct {
	Name   string
	Type   uint16
	Class  uint16
	TTL    uint32
	Addr   netip.Addr
	Target string
}

// Message is a DNS query or response.
type Message struct {
	ID        uint16
	Response  bool
	RCode     uint8
	Questions []Question
	Answers   []ResourceRecord
}

// Header flag bits.
const (
	flagQR = 1 << 15
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Encode serializes the message (no compression — legal, just larger).
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 12, 64)
	binary.BigEndian.PutUint16(buf[0:2], m.ID)
	var flags uint16 = flagRD
	if m.Response {
		flags |= flagQR | flagRA
	}
	flags |= uint16(m.RCode) & 0x0f
	binary.BigEndian.PutUint16(buf[2:4], flags)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(m.Answers)))
	for _, q := range m.Questions {
		n, err := encodeName(q.Name)
		if err != nil {
			return nil, err
		}
		buf = append(buf, n...)
		buf = appendU16(buf, q.Type)
		buf = appendU16(buf, q.Class)
	}
	for _, rr := range m.Answers {
		n, err := encodeName(rr.Name)
		if err != nil {
			return nil, err
		}
		buf = append(buf, n...)
		buf = appendU16(buf, rr.Type)
		buf = appendU16(buf, rr.Class)
		buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
		switch rr.Type {
		case TypeA:
			if !rr.Addr.Is4() {
				return nil, fmt.Errorf("dnssim: A record %q without IPv4 address", rr.Name)
			}
			a := rr.Addr.As4()
			buf = appendU16(buf, 4)
			buf = append(buf, a[:]...)
		case TypePTR:
			tn, err := encodeName(rr.Target)
			if err != nil {
				return nil, err
			}
			buf = appendU16(buf, uint16(len(tn)))
			buf = append(buf, tn...)
		default:
			return nil, fmt.Errorf("dnssim: cannot encode record type %d", rr.Type)
		}
	}
	return buf, nil
}

// DecodeMessage parses a DNS message.
func DecodeMessage(data []byte) (*Message, error) {
	if len(data) < 12 {
		return nil, ErrTruncated
	}
	m := &Message{ID: binary.BigEndian.Uint16(data[0:2])}
	flags := binary.BigEndian.Uint16(data[2:4])
	m.Response = flags&flagQR != 0
	m.RCode = uint8(flags & 0x0f)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+4 > len(data) {
			return nil, ErrTruncated
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+10 > len(data) {
			return nil, ErrTruncated
		}
		rr := ResourceRecord{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
			TTL:   binary.BigEndian.Uint32(data[off+4 : off+8]),
		}
		rdLen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
		off += 10
		if off+rdLen > len(data) {
			return nil, ErrTruncated
		}
		switch rr.Type {
		case TypeA:
			if rdLen != 4 {
				return nil, ErrTruncated
			}
			var a [4]byte
			copy(a[:], data[off:off+4])
			rr.Addr = netip.AddrFrom4(a)
		case TypePTR:
			target, _, err := decodeName(data, off)
			if err != nil {
				return nil, err
			}
			rr.Target = target
		}
		off += rdLen
		m.Answers = append(m.Answers, rr)
	}
	return m, nil
}

func appendU16(b []byte, v uint16) []byte {
	return binary.BigEndian.AppendUint16(b, v)
}

func encodeName(name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return []byte{0}, nil
	}
	if len(name) > 253 {
		return nil, ErrNameTooBig
	}
	var out []byte
	for _, label := range strings.Split(name, ".") {
		if label == "" || len(label) > 63 {
			return nil, ErrBadName
		}
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0), nil
}

// decodeName parses a (possibly compressed) name starting at off and returns
// the name plus the offset just past it.
func decodeName(data []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	end := off
	for hops := 0; ; hops++ {
		if hops > 128 {
			return "", 0, ErrBadName // pointer loop
		}
		if off >= len(data) {
			return "", 0, ErrTruncated
		}
		l := int(data[off])
		switch {
		case l == 0:
			if !jumped {
				end = off + 1
			}
			return strings.Join(labels, "."), end, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(data) {
				return "", 0, ErrTruncated
			}
			ptr := int(binary.BigEndian.Uint16(data[off:off+2]) & 0x3fff)
			if !jumped {
				end = off + 2
				jumped = true
			}
			off = ptr
		default:
			if off+1+l > len(data) {
				return "", 0, ErrTruncated
			}
			labels = append(labels, string(data[off+1:off+1+l]))
			off += 1 + l
			if !jumped {
				end = off
			}
		}
	}
}

// ReverseName renders the in-addr.arpa name for an IPv4 address.
func ReverseName(a netip.Addr) string {
	if !a.Is4() {
		return ""
	}
	b := a.As4()
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa", b[3], b[2], b[1], b[0])
}
