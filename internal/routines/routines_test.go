package routines

import (
	"testing"
	"time"

	"fiat/internal/simclock"
)

func TestDailyAtFiresEveryDay(t *testing.T) {
	clock := simclock.NewVirtual()
	var fired []Firing
	e := NewEngine(clock, func(f Firing) { fired = append(fired, f) })
	err := e.Add(Rule{
		Name:    "heat-at-6pm",
		Trigger: DailyAt{Offset: 18 * time.Hour},
		Actions: []Action{{Device: "Nest-E", Command: "turn-on"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * 24 * time.Hour)
	if len(fired) != 3 {
		t.Fatalf("firings = %d, want 3 over three days", len(fired))
	}
	for i, f := range fired {
		if f.At.Hour() != 18 || f.At.Minute() != 0 {
			t.Fatalf("firing %d at %v, want 18:00", i, f.At)
		}
		if f.Action.Device != "Nest-E" {
			t.Fatalf("firing %d device %q", i, f.Action.Device)
		}
	}
}

func TestEveryInterval(t *testing.T) {
	clock := simclock.NewVirtual()
	count := 0
	e := NewEngine(clock, func(Firing) { count++ })
	if err := e.Add(Rule{
		Name:    "hourly-check",
		Trigger: Every{Interval: time.Hour},
		Actions: []Action{{Device: "WyzeCam", Command: "snapshot"}},
	}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5*time.Hour + time.Minute)
	if count != 5 {
		t.Fatalf("firings = %d, want 5", count)
	}
}

func TestOnceFiresOnce(t *testing.T) {
	clock := simclock.NewVirtual()
	count := 0
	e := NewEngine(clock, func(Firing) { count++ })
	if err := e.Add(Rule{
		Name:    "one-shot",
		Trigger: Once{At: simclock.Epoch.Add(time.Hour)},
		Actions: []Action{{Device: "SP10", Command: "turn-off"}},
	}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(48 * time.Hour)
	if count != 1 {
		t.Fatalf("firings = %d, want 1", count)
	}
}

func TestMultiActionOrderAndHistory(t *testing.T) {
	clock := simclock.NewVirtual()
	e := NewEngine(clock, nil)
	if err := e.Add(Rule{
		Name:    "goodnight",
		Trigger: Once{At: simclock.Epoch.Add(time.Minute)},
		Actions: []Action{
			{Device: "WP3", Command: "turn-off"},
			{Device: "light", Command: "turn-off", Source: "Alexa"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	h := e.History()
	if len(h) != 2 {
		t.Fatalf("history = %d entries", len(h))
	}
	if h[0].Action.Device != "WP3" || h[1].Action.Device != "light" {
		t.Fatalf("action order: %+v", h)
	}
}

func TestRemoveCancelsSchedule(t *testing.T) {
	clock := simclock.NewVirtual()
	count := 0
	e := NewEngine(clock, func(Firing) { count++ })
	if err := e.Add(Rule{Name: "r", Trigger: Every{Interval: time.Minute},
		Actions: []Action{{Device: "d", Command: "c"}}}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2*time.Minute + time.Second)
	e.Remove("r")
	clock.Advance(time.Hour)
	if count != 2 {
		t.Fatalf("firings after Remove = %d, want 2", count)
	}
	if len(e.Rules()) != 0 {
		t.Fatal("rule still listed after Remove")
	}
}

func TestDuplicateAndInvalidRules(t *testing.T) {
	e := NewEngine(simclock.NewVirtual(), nil)
	r := Rule{Name: "x", Trigger: Every{Interval: time.Hour},
		Actions: []Action{{Device: "d", Command: "c"}}}
	if err := e.Add(r); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(r); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := e.Add(Rule{Name: "no-trigger", Actions: r.Actions}); err == nil {
		t.Fatal("rule without trigger accepted")
	}
	if err := e.Add(Rule{Name: "no-actions", Trigger: r.Trigger}); err == nil {
		t.Fatal("rule without actions accepted")
	}
}

func TestDeviceEdgesFeedTheDAG(t *testing.T) {
	e := NewEngine(simclock.NewVirtual(), nil)
	_ = e.Add(Rule{Name: "a", Trigger: Every{Interval: time.Hour}, Actions: []Action{
		{Device: "light", Command: "on", Source: "Alexa"},
		{Device: "plug", Command: "on"}, // cloud-sourced: no edge
	}})
	_ = e.Add(Rule{Name: "b", Trigger: Every{Interval: time.Hour}, Actions: []Action{
		{Device: "light", Command: "off", Source: "Alexa"}, // duplicate edge
		{Device: "blinds", Command: "close", Source: "HomeMini"},
	}})
	edges := e.DeviceEdges()
	want := [][2]string{{"Alexa", "light"}, {"HomeMini", "blinds"}}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", edges, want)
		}
	}
}

func TestRulesListing(t *testing.T) {
	e := NewEngine(simclock.NewVirtual(), nil)
	_ = e.Add(Rule{Name: "z", Trigger: DailyAt{Offset: 6 * time.Hour},
		Actions: []Action{{Device: "d", Command: "c"}}})
	_ = e.Add(Rule{Name: "a", Trigger: Every{Interval: time.Minute},
		Actions: []Action{{Device: "d", Command: "c"}}})
	rules := e.Rules()
	if len(rules) != 2 || rules[0][0] != 'a' || rules[1][0] != 'z' {
		t.Fatalf("Rules = %v", rules)
	}
}

func TestTriggerDescriptions(t *testing.T) {
	if (DailyAt{Offset: 18*time.Hour + 30*time.Minute}).Describe() != "every day at 18:30" {
		t.Fatal("DailyAt description")
	}
	if (Every{Interval: 5 * time.Minute}).Describe() != "every 5m0s" {
		t.Fatal("Every description")
	}
}
