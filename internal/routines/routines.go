// Package routines models the automation layer that generates the paper's
// "automated" traffic class: IFTTT-style rules ("turn on the heat at 6pm",
// "when the camera sees motion, blink the light") scheduled on the virtual
// clock. Each firing produces the device interactions whose traffic the
// proxy must learn to admit without a human present — and, for
// device-to-device rules, the DAG entries the Discussion's "Complex
// Scenarios" section calls for.
package routines

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fiat/internal/simclock"
)

// Trigger decides when a routine fires.
type Trigger interface {
	// Next returns the first firing instant strictly after now, or false
	// when the trigger never fires again.
	Next(now time.Time) (time.Time, bool)
	// Describe renders the trigger for rule listings.
	Describe() string
}

// DailyAt fires every day at a fixed clock offset.
type DailyAt struct {
	// Offset is the time of day, as a duration from midnight UTC.
	Offset time.Duration
}

// Next implements Trigger.
func (d DailyAt) Next(now time.Time) (time.Time, bool) {
	day := now.Truncate(24 * time.Hour)
	at := day.Add(d.Offset)
	if !at.After(now) {
		at = at.Add(24 * time.Hour)
	}
	return at, true
}

// Describe implements Trigger.
func (d DailyAt) Describe() string {
	h := int(d.Offset.Hours())
	m := int(d.Offset.Minutes()) % 60
	return fmt.Sprintf("every day at %02d:%02d", h, m)
}

// Every fires at a fixed interval.
type Every struct {
	Interval time.Duration
}

// Next implements Trigger.
func (e Every) Next(now time.Time) (time.Time, bool) {
	if e.Interval <= 0 {
		return time.Time{}, false
	}
	return now.Add(e.Interval), true
}

// Describe implements Trigger.
func (e Every) Describe() string { return "every " + e.Interval.String() }

// Once fires a single time.
type Once struct {
	At time.Time
}

// Next implements Trigger.
func (o Once) Next(now time.Time) (time.Time, bool) {
	if o.At.After(now) {
		return o.At, true
	}
	return time.Time{}, false
}

// Describe implements Trigger.
func (o Once) Describe() string { return "once at " + o.At.Format(time.RFC3339) }

// Action is one device command a routine performs.
type Action struct {
	// Device receives the command.
	Device string
	// Command is the operation name ("turn-on", "clean-room", ...).
	Command string
	// Source names the commanding peer for device-to-device actions
	// ("Alexa" telling the light); empty means the vendor cloud.
	Source string
}

// Rule is one automation.
type Rule struct {
	// Name identifies the rule.
	Name string
	// Trigger schedules it.
	Trigger Trigger
	// Actions run, in order, at each firing.
	Actions []Action
}

// Firing reports one executed action, delivered to the engine's sink.
type Firing struct {
	Rule   string
	Action Action
	At     time.Time
}

// Engine schedules rules on a virtual clock and emits Firings — the
// simulation's IFTTT. Wire the sink to a traffic generator (each firing
// produces an automated event) and, for device-to-device actions, install
// the matching proxy DAG edges.
type Engine struct {
	clock *simclock.VirtualClock

	mu      sync.Mutex
	rules   map[string]*scheduledRule
	sink    func(Firing)
	history []Firing
}

type scheduledRule struct {
	rule   Rule
	cancel func()
	active bool
}

// ErrDuplicateRule is returned when a rule name is reused.
var ErrDuplicateRule = errors.New("routines: rule already exists")

// NewEngine builds an engine on the clock; sink receives every firing
// (nil keeps history only).
func NewEngine(clock *simclock.VirtualClock, sink func(Firing)) *Engine {
	return &Engine{clock: clock, rules: make(map[string]*scheduledRule), sink: sink}
}

// Add installs and schedules a rule.
func (e *Engine) Add(r Rule) error {
	if r.Name == "" || r.Trigger == nil || len(r.Actions) == 0 {
		return fmt.Errorf("routines: rule needs a name, a trigger, and actions")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.rules[r.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateRule, r.Name)
	}
	sr := &scheduledRule{rule: r, active: true}
	e.rules[r.Name] = sr
	e.scheduleLocked(sr, e.clock.Now())
	return nil
}

// Remove cancels and deletes a rule.
func (e *Engine) Remove(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if sr, ok := e.rules[name]; ok {
		sr.active = false
		if sr.cancel != nil {
			sr.cancel()
		}
		delete(e.rules, name)
	}
}

// Rules lists the installed automations, sorted by name.
func (e *Engine) Rules() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.rules))
	for name, sr := range e.rules {
		out = append(out, fmt.Sprintf("%s: %s -> %d action(s)", name, sr.rule.Trigger.Describe(), len(sr.rule.Actions)))
	}
	sort.Strings(out)
	return out
}

// History returns all firings so far.
func (e *Engine) History() []Firing {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Firing(nil), e.history...)
}

// DeviceEdges returns the (source, device) pairs of all device-to-device
// actions — exactly the allow edges the proxy's DAG needs.
func (e *Engine) DeviceEdges() [][2]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	seen := map[[2]string]bool{}
	var out [][2]string
	for _, sr := range e.rules {
		for _, a := range sr.rule.Actions {
			if a.Source == "" {
				continue
			}
			edge := [2]string{a.Source, a.Device}
			if !seen[edge] {
				seen[edge] = true
				out = append(out, edge)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// scheduleLocked arms the rule's next firing. Callers hold e.mu.
func (e *Engine) scheduleLocked(sr *scheduledRule, now time.Time) {
	next, ok := sr.rule.Trigger.Next(now)
	if !ok {
		return
	}
	sr.cancel = e.clock.AfterFunc(next.Sub(now), func(at time.Time) {
		e.fire(sr, at)
	})
}

func (e *Engine) fire(sr *scheduledRule, at time.Time) {
	e.mu.Lock()
	if !sr.active {
		e.mu.Unlock()
		return
	}
	firings := make([]Firing, 0, len(sr.rule.Actions))
	for _, a := range sr.rule.Actions {
		firings = append(firings, Firing{Rule: sr.rule.Name, Action: a, At: at})
	}
	e.history = append(e.history, firings...)
	sink := e.sink
	e.scheduleLocked(sr, at)
	e.mu.Unlock()
	if sink != nil {
		for _, f := range firings {
			sink(f)
		}
	}
}
