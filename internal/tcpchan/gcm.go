package tcpchan

import (
	"crypto/aes"
	"crypto/cipher"
)

// newGCM builds an AES-256-GCM AEAD from 32 key bytes.
func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
