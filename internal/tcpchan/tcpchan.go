// Package tcpchan is the attestation channel FIAT deliberately did not
// choose: TCP plus a TLS-style handshake. It exists so the transport
// ablation can measure — on real sockets — the extra round trip QUIC 0-RTT
// removes. The protocol is the PSK-authenticated X25519 handshake of
// quicfast, reframed over a stream: TCP's own SYN/SYN-ACK costs one RTT,
// the hello exchange costs another, and only then does application data
// flow. Length-prefixed frames, AES-256-GCM, same key schedule.
package tcpchan

import (
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"fiat/internal/cryptoutil"
)

// Channel errors.
var (
	ErrAuth      = errors.New("tcpchan: authentication failed")
	ErrMalformed = errors.New("tcpchan: malformed frame")
)

const (
	pubLen    = 32
	randomLen = 16
	macLen    = 32
)

// frame I/O: 2-byte big-endian length prefix.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > 0xffff {
		return ErrMalformed
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	buf := make([]byte, binary.BigEndian.Uint16(hdr[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func mac(psk []byte, parts ...[]byte) []byte {
	m := hmac.New(sha256.New, psk)
	for _, p := range parts {
		m.Write(p)
	}
	return m.Sum(nil)
}

func deriveAEAD(shared, salt []byte, info string) (cipher.AEAD, []byte, error) {
	keyMat, err := cryptoutil.HKDF(shared, salt, []byte(info), 32+12)
	if err != nil {
		return nil, nil, err
	}
	aead, err := newGCM(keyMat[:32])
	return aead, keyMat[32:], err
}

// Conn is an established channel.
type Conn struct {
	c        net.Conn
	sendAEAD cipher.AEAD
	sendIV   []byte
	recvAEAD cipher.AEAD
	recvIV   []byte
	sendSeq  uint64
	recvSeq  uint64
}

// Dial connects and completes the handshake as the client: write
// [cpub|crandom|mac], read [spub|srandom|mac]. On an otherwise idle
// connection this costs one application round trip on top of TCP's own.
func Dial(network, addr string, psk []byte) (*Conn, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		nc.Close()
		return nil, err
	}
	crandom := make([]byte, randomLen)
	if _, err := io.ReadFull(rand.Reader, crandom); err != nil {
		nc.Close()
		return nil, err
	}
	cpub := priv.PublicKey().Bytes()
	hello := append(append([]byte{}, cpub...), crandom...)
	hello = append(hello, mac(psk, []byte("tcp-hello"), cpub, crandom)...)
	if err := writeFrame(nc, hello); err != nil {
		nc.Close()
		return nil, err
	}
	reply, err := readFrame(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if len(reply) != pubLen+randomLen+macLen {
		nc.Close()
		return nil, ErrMalformed
	}
	spubRaw := reply[:pubLen]
	srandom := reply[pubLen : pubLen+randomLen]
	if !hmac.Equal(mac(psk, []byte("tcp-reply"), spubRaw, srandom, crandom), reply[pubLen+randomLen:]) {
		nc.Close()
		return nil, ErrAuth
	}
	spub, err := ecdh.X25519().NewPublicKey(spubRaw)
	if err != nil {
		nc.Close()
		return nil, ErrMalformed
	}
	shared, err := priv.ECDH(spub)
	if err != nil {
		nc.Close()
		return nil, ErrMalformed
	}
	salt := append(append([]byte{}, crandom...), srandom...)
	c2s, c2sIV, err := deriveAEAD(shared, salt, "tcpchan c2s")
	if err != nil {
		nc.Close()
		return nil, err
	}
	s2c, s2cIV, err := deriveAEAD(shared, salt, "tcpchan s2c")
	if err != nil {
		nc.Close()
		return nil, err
	}
	return &Conn{c: nc, sendAEAD: c2s, sendIV: c2sIV, recvAEAD: s2c, recvIV: s2cIV}, nil
}

// Server accepts channels and delivers decrypted messages.
type Server struct {
	ln  net.Listener
	psk []byte
}

// Listen starts a server on addr.
func Listen(network, addr string, psk []byte) (*Server, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Server{ln: ln, psk: append([]byte(nil), psk...)}, nil
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting.
func (s *Server) Close() error { return s.ln.Close() }

// Serve accepts connections and calls handler with each received message
// until the listener closes.
func (s *Server) Serve(handler func(payload []byte)) error {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return nil //nolint:nilerr // closed listener ends Serve cleanly
		}
		go func() {
			conn, err := s.handshake(nc)
			if err != nil {
				nc.Close()
				return
			}
			defer nc.Close()
			for {
				msg, err := conn.Receive()
				if err != nil {
					return
				}
				if handler != nil {
					handler(msg)
				}
				// Application-level ack, mirroring quicfast's behaviour
				// so latency comparisons measure the same contract.
				if err := conn.Send([]byte("ack")); err != nil {
					return
				}
			}
		}()
	}
}

func (s *Server) handshake(nc net.Conn) (*Conn, error) {
	hello, err := readFrame(nc)
	if err != nil {
		return nil, err
	}
	if len(hello) != pubLen+randomLen+macLen {
		return nil, ErrMalformed
	}
	cpubRaw := hello[:pubLen]
	crandom := hello[pubLen : pubLen+randomLen]
	if !hmac.Equal(mac(s.psk, []byte("tcp-hello"), cpubRaw, crandom), hello[pubLen+randomLen:]) {
		return nil, ErrAuth
	}
	cpub, err := ecdh.X25519().NewPublicKey(cpubRaw)
	if err != nil {
		return nil, ErrMalformed
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	srandom := make([]byte, randomLen)
	if _, err := io.ReadFull(rand.Reader, srandom); err != nil {
		return nil, err
	}
	spub := priv.PublicKey().Bytes()
	reply := append(append([]byte{}, spub...), srandom...)
	reply = append(reply, mac(s.psk, []byte("tcp-reply"), spub, srandom, crandom)...)
	if err := writeFrame(nc, reply); err != nil {
		return nil, err
	}
	shared, err := priv.ECDH(cpub)
	if err != nil {
		return nil, ErrMalformed
	}
	salt := append(append([]byte{}, crandom...), srandom...)
	c2s, c2sIV, err := deriveAEAD(shared, salt, "tcpchan c2s")
	if err != nil {
		return nil, err
	}
	s2c, s2cIV, err := deriveAEAD(shared, salt, "tcpchan s2c")
	if err != nil {
		return nil, err
	}
	// The server receives on c2s and sends on s2c.
	return &Conn{c: nc, sendAEAD: s2c, sendIV: s2cIV, recvAEAD: c2s, recvIV: c2sIV}, nil
}

// Send encrypts and writes one message, then waits for nothing (the caller
// pairs it with Receive for acks).
func (c *Conn) Send(payload []byte) error {
	c.sendSeq++
	ct := c.sendAEAD.Seal(nil, nonce(c.sendIV, c.sendSeq), payload, nil)
	return writeFrame(c.c, ct)
}

// Receive reads and decrypts one message.
func (c *Conn) Receive() ([]byte, error) {
	ct, err := readFrame(c.c)
	if err != nil {
		return nil, err
	}
	c.recvSeq++
	pt, err := c.recvAEAD.Open(nil, nonce(c.recvIV, c.recvSeq), ct, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	return pt, nil
}

// SendWithAck sends and blocks for the server's application ack — the
// operation the latency harness times.
func (c *Conn) SendWithAck(payload []byte) error {
	if err := c.Send(payload); err != nil {
		return err
	}
	ack, err := c.Receive()
	if err != nil {
		return err
	}
	if string(ack) != "ack" {
		return ErrMalformed
	}
	return nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

func nonce(iv []byte, seq uint64) []byte {
	n := make([]byte, 12)
	copy(n, iv)
	binary.BigEndian.PutUint64(n[4:], binary.BigEndian.Uint64(n[4:])^seq)
	return n
}
