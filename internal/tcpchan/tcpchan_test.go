package tcpchan

import (
	"sync"
	"testing"
	"time"
)

var psk = []byte("tcpchan-test-pre-shared-key-32b!")

type sink struct {
	mu   sync.Mutex
	msgs [][]byte
}

func (s *sink) add(m []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, append([]byte(nil), m...))
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func startServer(t *testing.T) (*Server, *sink) {
	t.Helper()
	srv, err := Listen("tcp", "127.0.0.1:0", psk)
	if err != nil {
		t.Fatal(err)
	}
	sk := &sink{}
	go func() { _ = srv.Serve(sk.add) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, sk
}

func TestHandshakeAndSend(t *testing.T) {
	srv, sk := startServer(t)
	c, err := Dial("tcp", srv.Addr().String(), psk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendWithAck([]byte("attestation")); err != nil {
		t.Fatal(err)
	}
	if sk.count() != 1 {
		t.Fatalf("server got %d messages", sk.count())
	}
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if string(sk.msgs[0]) != "attestation" {
		t.Fatalf("payload = %q", sk.msgs[0])
	}
}

func TestMultipleMessagesOneConnection(t *testing.T) {
	srv, sk := startServer(t)
	c, err := Dial("tcp", srv.Addr().String(), psk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.SendWithAck([]byte{byte(i)}); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
	if sk.count() != 5 {
		t.Fatalf("server got %d messages", sk.count())
	}
}

func TestWrongPSKRejected(t *testing.T) {
	srv, sk := startServer(t)
	if _, err := Dial("tcp", srv.Addr().String(), []byte("the-wrong-pre-shared-key-32-byte")); err == nil {
		t.Fatal("handshake with wrong PSK succeeded")
	}
	if sk.count() != 0 {
		t.Fatal("message delivered under wrong PSK")
	}
}

func TestDelayRelayAddsRTT(t *testing.T) {
	srv, _ := startServer(t)
	const oneWay = 25 * time.Millisecond
	relay, err := NewDelayRelay(srv.Addr().String(), oneWay)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	// Direct: handshake + send-with-ack.
	start := time.Now()
	direct, err := Dial("tcp", srv.Addr().String(), psk)
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.SendWithAck([]byte("x")); err != nil {
		t.Fatal(err)
	}
	directTime := time.Since(start)
	direct.Close()

	// Relayed: TCP connect costs ~0 (relay is local), but the hello
	// exchange and the data+ack exchange each cross the delayed path, so
	// >= 4 one-way delays land on the wire.
	start = time.Now()
	relayed, err := Dial("tcp", relay.Addr(), psk)
	if err != nil {
		t.Fatal(err)
	}
	if err := relayed.SendWithAck([]byte("x")); err != nil {
		t.Fatal(err)
	}
	relayedTime := time.Since(start)
	relayed.Close()

	if relayedTime < directTime+3*oneWay {
		t.Fatalf("relayed %v vs direct %v: delay not applied", relayedTime, directTime)
	}
}

func TestSequenceBindingPreventsReplayWithinStream(t *testing.T) {
	// Receiving the same ciphertext twice must fail: nonces are
	// sequence-bound.
	srv, _ := startServer(t)
	c, err := Dial("tcp", srv.Addr().String(), psk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ct := c.sendAEAD.Seal(nil, nonce(c.sendIV, 1), []byte("m"), nil)
	if _, err := c.recvAEAD.Open(nil, nonce(c.recvIV, 1), ct, nil); err == nil {
		t.Fatal("cross-direction decryption succeeded")
	}
}
