package tcpchan

import (
	"io"
	"net"
	"sync"
	"time"
)

// DelayRelay is a TCP relay adding one-way latency in each direction —
// netem for the loopback latency experiments. Dial the relay's address
// instead of the real server's.
type DelayRelay struct {
	ln     net.Listener
	target string
	oneWay time.Duration

	mu     sync.Mutex
	closed bool
}

// NewDelayRelay listens on a loopback port and forwards every connection
// to target with the given one-way delay applied to both directions.
func NewDelayRelay(target string, oneWay time.Duration) (*DelayRelay, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &DelayRelay{ln: ln, target: target, oneWay: oneWay}
	go r.acceptLoop()
	return r, nil
}

// Addr returns the relay's dialable address.
func (r *DelayRelay) Addr() string { return r.ln.Addr().String() }

// Close stops the relay.
func (r *DelayRelay) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return r.ln.Close()
}

func (r *DelayRelay) acceptLoop() {
	for {
		client, err := r.ln.Accept()
		if err != nil {
			return
		}
		go r.handle(client)
	}
}

func (r *DelayRelay) handle(client net.Conn) {
	// The client's TCP connect completed against the local relay, hiding
	// the path's SYN/SYN-ACK round trip; charge it here before any bytes
	// flow so connection setup costs what it would on the real path.
	time.Sleep(2 * r.oneWay)
	server, err := net.Dial("tcp", r.target)
	if err != nil {
		client.Close()
		return
	}
	pipe := func(dst, src net.Conn) {
		defer dst.Close()
		defer src.Close()
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				time.Sleep(r.oneWay)
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err == io.EOF || err != nil {
				return
			}
		}
	}
	go pipe(server, client)
	go pipe(client, server)
}
