module fiat

go 1.22
