package fiat

// The benchmark harness: one testing.B benchmark per paper table/figure
// (each runs the corresponding experiment end-to-end and reports its
// headline metric), plus micro-benchmarks of the pipeline hot paths. Run
//
//	go test -bench=. -benchmem
//
// The regenerated tables themselves come from cmd/fiatbench; these
// benchmarks measure how fast the reproduction produces them and guard the
// key metrics.

import (
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"fiat/internal/core"
	"fiat/internal/dataset"
	"fiat/internal/devices"
	"fiat/internal/events"
	"fiat/internal/experiments"
	"fiat/internal/features"
	"fiat/internal/flows"
	"fiat/internal/keystore"
	"fiat/internal/ml"
	"fiat/internal/sensors"
	"fiat/internal/simclock"
)

// benchScale is small enough for iterated runs yet large enough for the
// metrics to be meaningful.
func benchScale(seed int64) experiments.Scale {
	return experiments.Scale{
		Seed:      seed,
		YTDevices: 12, YTDuration: 6 * time.Hour,
		MonDevices: 8, MonDuration: 3 * time.Hour,
		TestbedDays: 4, ManualPerDay: 6,
		CVSeeds: 1, PermRepeats: 5,
		Table6Ops: 25, HumanWindows: 200, Table7Runs: 2,
	}
}

// runExperiment drives one experiment per iteration at a fixed seed: the
// first iteration builds the corpora (memoized by internal/experiments),
// so the steady-state measurement is "regenerate the table from a warm
// corpus" — and the benchmark cannot be inflated into re-generating a
// fresh multi-day corpus hundreds of times.
func runExperiment(b *testing.B, fn func(experiments.Scale) experiments.Result, metric string) {
	b.Helper()
	sc := benchScale(100)
	fn(sc) // warm the corpus caches outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		r := fn(sc)
		last = r.Metrics[metric]
	}
	b.ReportMetric(last, metric)
}

func BenchmarkFig1aFlowTimeline(b *testing.B) {
	runExperiment(b, experiments.Fig1a, "flows")
}

func BenchmarkFig1bPredictabilityCDF(b *testing.B) {
	runExperiment(b, experiments.Fig1b, "yourthings_portless_p20")
}

func BenchmarkFig1cMaxIntervals(b *testing.B) {
	runExperiment(b, experiments.Fig1c, "within_5min_fraction")
}

func BenchmarkInspectorAggregates(b *testing.B) {
	runExperiment(b, experiments.Inspector, "aggregate_median")
}

func BenchmarkFig2TestbedPredictability(b *testing.B) {
	runExperiment(b, experiments.Fig2, "HomeMini_control")
}

func BenchmarkCommandCompletionN(b *testing.B) {
	runExperiment(b, experiments.CompletionN, "max_N")
}

func BenchmarkTable2ModelSelection(b *testing.B) {
	runExperiment(b, experiments.Table2, "bernoulli-naive-bayes")
}

func BenchmarkTable3PerDevice(b *testing.B) {
	runExperiment(b, experiments.Table3, "WyzeCam-DE_bnb_f1")
}

func BenchmarkTable4PermImportance(b *testing.B) {
	runExperiment(b, experiments.Table4, "top_importance")
}

func BenchmarkTable5Transfer(b *testing.B) {
	runExperiment(b, experiments.Table5, "WyzeCam_US-JP_bnb")
}

func BenchmarkTable6Accuracy(b *testing.B) {
	runExperiment(b, experiments.Table6, "worst_fn")
}

func BenchmarkTable7Latency(b *testing.B) {
	runExperiment(b, experiments.Table7, "min_speedup_lan")
}

func BenchmarkVerdictDelayTolerance(b *testing.B) {
	runExperiment(b, experiments.DelayTolerance, "max_delay_all_ok_seconds")
}

// Ablation benches.

func BenchmarkAblationBucketing(b *testing.B) {
	runExperiment(b, experiments.AblationBucketing, "mean_delta")
}

func BenchmarkAblationGapThreshold(b *testing.B) {
	runExperiment(b, experiments.AblationGap, "f1_gap_5s")
}

func BenchmarkAblationHeadN(b *testing.B) {
	runExperiment(b, experiments.AblationHeadN, "f1_n5")
}

func BenchmarkAblationBootstrapWindow(b *testing.B) {
	runExperiment(b, experiments.AblationBootstrap, "hit_rate_20m")
}

func BenchmarkAblationTransport(b *testing.B) {
	runExperiment(b, experiments.AblationTransport, "LAN_q0_ms")
}

// Micro-benchmarks of the proxy's per-packet hot paths.

func benchRecords(n int) []flows.Record {
	p := devices.ByName("HomeMini")
	recs := p.Generate(simclock.NewRNG(1), devices.TraceOptions{
		Start: simclock.Epoch, Duration: 48 * time.Hour, ManualPerDay: 8, Routines: true,
	})
	for len(recs) < n {
		recs = append(recs, recs...)
	}
	return recs[:n]
}

func BenchmarkAnalyzerObserve(b *testing.B) {
	recs := benchRecords(b.N)
	a := flows.NewAnalyzer(flows.ModePortLess)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Observe(recs[i])
	}
}

func BenchmarkRuleTableMatch(b *testing.B) {
	recs := benchRecords(100000)
	rt := flows.NewRuleTable(flows.ModePortLess)
	for _, r := range recs[:50000] {
		rt.Learn(r)
	}
	rt.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Match(recs[50000+i%50000])
	}
}

func BenchmarkEventGrouping(b *testing.B) {
	recs := benchRecords(b.N)
	g := events.NewGrouper(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Add(recs[i])
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	recs := benchRecords(2000)
	evs := events.Group(recs[:2000], 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.Extract(evs[i%len(evs)])
	}
}

func BenchmarkBernoulliNBPredict(b *testing.B) {
	traces := dataset.Testbed(dataset.TestbedOptions{Days: 3, ManualPerDay: 6, Seed: 1})
	tr, _ := dataset.FindTrace(traces, "HomeMini-US")
	evs := tr.Events(flows.ModePortLess)
	X := features.ExtractAll(evs)
	y := features.MulticlassLabels(evs)
	var scaler ml.StandardScaler
	Xs, err := scaler.FitTransform(X)
	if err != nil {
		b.Fatal(err)
	}
	clf := &ml.BernoulliNB{}
	if err := clf.Fit(Xs, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.PredictOne(clf, Xs[i%len(Xs)])
	}
}

func BenchmarkHumannessValidation(b *testing.B) {
	v, gen, err := sensors.DefaultValidator(7)
	if err != nil {
		b.Fatal(err)
	}
	feats := sensors.Features(gen.Human())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Validate(feats)
	}
}

func BenchmarkSensorFeatureExtraction(b *testing.B) {
	gen := sensors.NewGenerator(simclock.NewRNG(1))
	w := gen.Human()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sensors.Features(w)
	}
}

func BenchmarkProxyProcessPredictable(b *testing.B) {
	clock := simclock.NewVirtual()
	sys, err := NewSystem(Options{Clock: clock, Rand: rand.New(rand.NewSource(1)), Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.AddSimpleDevice("plug", 235); err != nil {
		b.Fatal(err)
	}
	cloud := netip.MustParseAddr("52.1.1.1")
	rec := func() Record {
		return Record{
			Time: clock.Now(), Size: 128, Proto: "tcp", Dir: flows.DirOutbound,
			RemoteIP: cloud, RemoteDomain: "cloud.example",
			LocalPort: 40000, RemotePort: 443, Category: flows.CategoryControl,
		}
	}
	for i := 0; i < 25; i++ {
		sys.Proxy.Process("plug", rec(), "")
		clock.Advance(time.Minute)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(time.Minute)
		sys.Proxy.Process("plug", rec(), "")
	}
}

func BenchmarkAttestationRoundTrip(b *testing.B) {
	clock := simclock.NewVirtual()
	sys, err := NewSystem(Options{Clock: clock, Rand: rand.New(rand.NewSource(1)), Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	phone, err := sys.PairPhone()
	if err != nil {
		b.Fatal(err)
	}
	phone.App.BindApp("app", "dev")
	w := phone.Sensors.Human()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err := phone.App.Attest("app", w)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Proxy.HandleAttestation(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleNewSystem() {
	sys, err := NewSystem(Options{Rand: rand.New(rand.NewSource(1)), Seed: 7})
	if err != nil {
		panic(err)
	}
	if err := sys.AddSimpleDevice("plug", 235); err != nil {
		panic(err)
	}
	fmt.Println("protected devices ready:", sys.Proxy.Bootstrapped() == false)
	// Output: protected devices ready: true
}

func BenchmarkAblationHumanness(b *testing.B) {
	runExperiment(b, experiments.AblationHumanness, "random-forest-human")
}

// Sharded engine throughput.

// benchHumanValidator trains the humanness model once for every sharded
// throughput sub-benchmark; the training cost is setup, not engine work.
var benchHumanValidator = struct {
	sync.Once
	v   *sensors.Validator
	err error
}{}

func benchValidator(b *testing.B) *sensors.Validator {
	b.Helper()
	benchHumanValidator.Do(func() {
		benchHumanValidator.v, _, benchHumanValidator.err = sensors.DefaultValidator(1)
	})
	if benchHumanValidator.err != nil {
		b.Fatal(benchHumanValidator.err)
	}
	return benchHumanValidator.v
}

// benchShardedProxy measures the engine's steady-state rule-hit path: every
// iteration advances the virtual clock one heartbeat period and decides one
// batch carrying a periodic heartbeat per device. With shards=1 ProcessBatch
// takes the sequential fallback, so the 1-vs-GOMAXPROCS pair is exactly the
// sequential/sharded comparison; speedup needs real cores (on a single-CPU
// runner the sharded rows only pay fan-out overhead).
func benchShardedProxy(b *testing.B, nDev, shards int) {
	clock := simclock.NewVirtual()
	ks, err := keystore.New(rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	proxy := core.NewProxy(clock, ks, benchValidator(b), core.Config{
		Bootstrap: 10 * time.Minute, Shards: shards,
	})
	cloud := netip.MustParseAddr("52.1.1.1")
	names := make([]string, nDev)
	for i := range names {
		names[i] = fmt.Sprintf("dev%02d", i)
		if err := proxy.AddDevice(core.DeviceConfig{
			Name: names[i], Classifier: core.RuleClassifier{NotificationSize: 235}, GraceN: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	hb := func(name string, at time.Time) core.PacketIn {
		return core.PacketIn{Device: name, Rec: flows.Record{
			Time: at, Size: 128, Proto: "tcp", Dir: flows.DirOutbound,
			RemoteIP: cloud, RemoteDomain: "cloud.example",
			LocalPort: 40000, RemotePort: 443, Category: flows.CategoryControl,
		}}
	}
	// Learn a one-second heartbeat period through the bootstrap window.
	for tick := 0; tick < 30; tick++ {
		batch := make([]core.PacketIn, nDev)
		for i, name := range names {
			batch[i] = hb(name, clock.Now())
		}
		proxy.ProcessBatch(batch)
		clock.Advance(time.Second)
	}
	clock.Advance(10 * time.Minute) // past the bootstrap window
	// Steady state: each iteration decides one batch of perDev on-period
	// heartbeats per device, then advances the clock past the batch.
	const perDev = 32
	batch := make([]core.PacketIn, 0, nDev*perDev)
	feed := func() []core.Decision {
		batch = batch[:0]
		base := clock.Now()
		for k := 0; k < perDev; k++ {
			at := base.Add(time.Duration(k) * time.Second)
			for _, name := range names {
				batch = append(batch, hb(name, at))
			}
		}
		return proxy.ProcessBatch(batch)
	}
	warm := feed() // resynchronizes each bucket's period clock, then verify
	clock.Advance(perDev * time.Second)
	for i, d := range feed() {
		if d.Reason != core.ReasonRuleHit {
			b.Fatalf("steady state not on the rule-hit path: packet %d: %+v", i, d)
		}
	}
	_ = warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(perDev * time.Second)
		feed()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N*nDev*perDev)/s, "packets/s")
	}
}

// BenchmarkProxyShardedThroughput sweeps fleet size against shard count:
// shards=1 is the sequential baseline, shards=GOMAXPROCS the parallel
// engine. Compare packets/s within a device count.
func BenchmarkProxyShardedThroughput(b *testing.B) {
	shardCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		shardCounts = append(shardCounts, n)
	}
	for _, nDev := range []int{1, 4, 8, 16} {
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("devices=%d/shards=%d", nDev, shards), func(b *testing.B) {
				benchShardedProxy(b, nDev, shards)
			})
		}
	}
}
