// Package fiat is the public facade of the FIAT reproduction (CoNEXT '22):
// a third-party, passive authorization system for home-IoT traffic. A
// System bundles the server-side proxy — rule learning over predictable
// traffic, event grouping, manual-event classification, humanness gating —
// with the enclave keystore and the trained humanness validator; PairPhone
// enrolls a phone whose ClientApp produces signed sensor attestations.
//
// Quick start:
//
//	sys, _ := fiat.NewSystem(fiat.Options{Seed: 1})
//	_ = sys.AddSimpleDevice("plug", 235)
//	phone, _ := sys.PairPhone()
//	phone.App.BindApp("com.plug.app", "plug")
//	// ... feed traffic via sys.Proxy.Process, attest via phone.Attest.
//
// See examples/ for end-to-end scenarios and DESIGN.md for the system map.
package fiat

import (
	cryptorand "crypto/rand"
	"fmt"
	"io"

	"fiat/internal/core"
	"fiat/internal/events"
	"fiat/internal/flows"
	"fiat/internal/keystore"
	"fiat/internal/sensors"
	"fiat/internal/simclock"
)

// Re-exported decision vocabulary.
const (
	Allow = core.Allow
	Drop  = core.Drop
)

// Decision is the proxy's per-packet output.
type Decision = core.Decision

// Record is one normalized packet observation.
type Record = flows.Record

// Event is one unpredictable event.
type Event = events.Event

// Options configures NewSystem.
type Options struct {
	// Clock defaults to a virtual clock (simulations). Pass
	// simclock.RealClock{} for live deployments.
	Clock simclock.Clock
	// Rand seeds the enclaves and pairing codes (default crypto/rand).
	Rand io.Reader
	// Seed drives the humanness-validator training corpus.
	Seed int64
	// Proxy carries the pipeline configuration (bootstrap window, event
	// gap, lockout policy).
	Proxy core.Config
	// Validator overrides the humanness validator (nil trains one).
	Validator *sensors.Validator
}

// System is a deployed FIAT instance.
type System struct {
	// Proxy is the access-control pipeline.
	Proxy *core.Proxy
	// Clock is the time source shared by every component.
	Clock simclock.Clock
	// Keystore is the proxy-side enclave.
	Keystore *keystore.Store
	// Validator is the humanness model.
	Validator *sensors.Validator

	rand   io.Reader
	phones int
}

// Phone is a paired client device.
type Phone struct {
	// App is FIAT's client-side component.
	App *core.ClientApp
	// Keystore is the phone-side enclave holding the pairing key.
	Keystore *keystore.Store
	// Sensors generates interaction windows in simulations.
	Sensors *sensors.Generator
}

// NewSystem builds a proxy-side FIAT instance.
func NewSystem(opts Options) (*System, error) {
	if opts.Clock == nil {
		opts.Clock = simclock.NewVirtual()
	}
	if opts.Rand == nil {
		opts.Rand = cryptorand.Reader
	}
	ks, err := keystore.New(opts.Rand)
	if err != nil {
		return nil, fmt.Errorf("fiat: proxy keystore: %w", err)
	}
	validator := opts.Validator
	if validator == nil {
		v, _, err := sensors.DefaultValidator(opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("fiat: humanness validator: %w", err)
		}
		validator = v
	}
	return &System{
		Proxy:     core.NewProxy(opts.Clock, ks, validator, opts.Proxy),
		Clock:     opts.Clock,
		Keystore:  ks,
		Validator: validator,
		rand:      opts.Rand,
	}, nil
}

// PairPhone runs the local pairing ceremony and returns the enrolled phone.
// Each call enrolls an additional phone under its own pairing key.
func (s *System) PairPhone() (*Phone, error) {
	phoneKS, err := keystore.New(s.rand)
	if err != nil {
		return nil, fmt.Errorf("fiat: phone keystore: %w", err)
	}
	s.phones++
	alias := keystore.PairingAlias
	if s.phones > 1 {
		alias = fmt.Sprintf("%s-%d", keystore.PairingAlias, s.phones)
	}
	offer, err := keystore.NewPairingOfferAlias(s.Keystore, s.rand, alias)
	if err != nil {
		return nil, fmt.Errorf("fiat: pairing offer: %w", err)
	}
	resp, err := keystore.AcceptPairing(phoneKS, offer)
	if err != nil {
		return nil, fmt.Errorf("fiat: accepting pairing: %w", err)
	}
	if _, err := keystore.ConfirmPairing(offer, resp); err != nil {
		return nil, fmt.Errorf("fiat: confirming pairing: %w", err)
	}
	s.Proxy.RegisterPairingAlias(alias)
	return &Phone{
		App:      core.NewClientApp(s.Clock, phoneKS),
		Keystore: phoneKS,
		Sensors:  sensors.NewGenerator(simclock.NewRNG(1).Fork("phone")),
	}, nil
}

// AddSimpleDevice registers a device whose manual traffic is identified by
// its notification packet size (the SP10/WP3/Nest-E class).
func (s *System) AddSimpleDevice(name string, notificationSize int) error {
	return s.Proxy.AddDevice(core.DeviceConfig{
		Name:       name,
		Classifier: core.RuleClassifier{NotificationSize: notificationSize},
		GraceN:     1,
	})
}

// AddMLDevice registers a device with a BernoulliNB manual-event classifier
// trained on the given labeled events (collected during an observation
// period). graceN <= 0 selects the deployed N = 5.
func (s *System) AddMLDevice(name string, training []*Event, graceN int) error {
	clf, err := core.TrainMLClassifier(training, nil)
	if err != nil {
		return fmt.Errorf("fiat: training classifier for %s: %w", name, err)
	}
	return s.Proxy.AddDevice(core.DeviceConfig{Name: name, Classifier: clf, GraceN: graceN})
}

// Attest produces and immediately delivers an attestation for an
// interaction with appPkg observed in window w — the in-process shortcut
// simulations use instead of the QUIC channel.
func (p *Phone) Attest(sys *System, appPkg string, w sensors.Window) (human bool, err error) {
	payload, err := p.App.Attest(appPkg, w)
	if err != nil {
		return false, err
	}
	return sys.Proxy.HandleAttestation(payload)
}
