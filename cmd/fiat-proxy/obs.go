package main

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"fiat/internal/obs"
)

// serveObs exposes the registry over HTTP on addr:
//
//	/metrics     deterministic text snapshot (Prometheus exposition style)
//	/debug/vars  expvar JSON (the registry is published under "fiat")
//	/debug/pprof net/http/pprof profiles
//
// Runtime gauges are refreshed on every scrape so heap and goroutine counts
// are current without a background collector.
func serveObs(reg *obs.Registry, addr string) {
	reg.PublishExpvar("fiat")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		updateRuntimeGauges(reg)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = reg.WriteTo(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "fiat-proxy: obs:", err)
		}
	}()
	fmt.Printf("fiat-proxy: observability on http://%s/metrics (expvar, pprof under /debug)\n", addr)
}

// updateRuntimeGauges refreshes the fiat_runtime_* gauges from the Go
// runtime.
func updateRuntimeGauges(reg *obs.Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("fiat_runtime_goroutines").Set(int64(runtime.NumGoroutine()))
	reg.Gauge("fiat_runtime_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	reg.Gauge("fiat_runtime_heap_objects").Set(int64(ms.HeapObjects))
	reg.Gauge("fiat_runtime_gc_cycles").Set(int64(ms.NumGC))
}

// reportRuntime prints a one-line runtime stats digest every interval until
// the process exits.
func reportRuntime(reg *obs.Registry, interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for range t.C {
			updateRuntimeGauges(reg)
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			fmt.Printf("[runtime ] goroutines=%d heap=%dKiB objects=%d gc=%d\n",
				runtime.NumGoroutine(), ms.HeapAlloc/1024, ms.HeapObjects, ms.NumGC)
		}
	}()
}
