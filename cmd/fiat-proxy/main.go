// Command fiat-proxy runs FIAT's server-side component live: it listens for
// phone attestations on a quicfast UDP socket and pushes a demo smart-plug
// traffic feed through the access-control pipeline, printing every verdict.
//
// Pair a phone by passing the printed code to fiat-app:
//
//	fiat-proxy -listen 127.0.0.1:7844 -bootstrap 3s
//	fiat-app -proxy 127.0.0.1:7844 -code <hex> -device plug
//
// Inject a command while a human attestation is fresh and the proxy allows
// it; inject without one and it drops.
//
// With -state-dir the proxy runs durably: every input operation is
// write-ahead logged with per-record checksums before it is applied,
// periodic checkpoints snapshot the full engine state, and a restart with
// the same directory recovers snapshot+WAL and resumes. -wal-sync picks the
// fsync policy (always, tick, off); SIGINT/SIGTERM triggers a graceful
// shutdown that flushes the WAL, takes a final checkpoint, and prints the
// closing obs snapshot.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fiat/internal/artifact"
	"fiat/internal/core"
	"fiat/internal/durable"
	"fiat/internal/flows"
	"fiat/internal/keystore"
	"fiat/internal/mud"
	"fiat/internal/obs"
	"fiat/internal/quicfast"
	"fiat/internal/sensors"
	"fiat/internal/simclock"
	"fiat/internal/swap"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7844", "UDP address for attestations")
	codeHex := flag.String("code", "", "pairing code (hex); generated when empty")
	bootstrap := flag.Duration("bootstrap", 5*time.Second, "rule-learning window (paper: 20m)")
	nDevices := flag.Int("devices", 4, "simulated plug devices fed to the engine as one batch per tick")
	shards := flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
	async := flag.Bool("async", false, "drive the shards through the ring-buffer-fed async worker pipeline (same decisions, zero steady-state allocations)")
	duration := flag.Duration("duration", time.Minute, "how long to run the demo feed")
	attackEvery := flag.Duration("attack-every", 10*time.Second, "injected command cadence")
	mudOut := flag.String("mud", "", "export learned rules as an RFC 8520 MUD profile on exit")
	pendingWindow := flag.Duration("pending-window", 0, "degraded mode: hold unattested manual events this long awaiting a late attestation (0 = strict)")
	pendingMax := flag.Int("pending-max", 0, "degraded mode: held-decision queue bound (0 = default 64)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, expvar, and pprof on this HTTP address (empty = disabled)")
	obsInterval := flag.Duration("obs-interval", 0, "print runtime stats every interval (0 = disabled)")
	stateDir := flag.String("state-dir", "", "durable state directory (WAL + snapshots); empty = in-memory only")
	walSync := flag.String("wal-sync", "tick", "WAL fsync policy with -state-dir: always, tick, or off")
	checkpointEvery := flag.Duration("checkpoint-every", 30*time.Second, "periodic snapshot cadence with -state-dir (0 = only on shutdown)")
	relearn := flag.Bool("relearn", false, "online relearning: on drift, relearn rules from live traffic, shadow-evaluate the candidate, and RCU hot-swap it in when it matches-or-beats the live artifact")
	driftMiss := flag.Float64("drift-miss-ratio", 0, "relearn trigger: rule-miss ratio per detector window (0 = default 0.5)")
	driftMargin := flag.Float64("drift-margin", 0, "relearn trigger: manual-classification fraction drift vs baseline (0 = default 0.4)")
	driftLockouts := flag.Int("drift-lockout-burst", 0, "relearn trigger: device lockouts per housekeeping tick (0 = default 1)")
	relearnFor := flag.Duration("relearn-for", 0, "how long a drift-triggered candidate learns live traffic before compiling (0 = default 10m)")
	shadowFor := flag.Duration("shadow-for", 0, "how long a compiled candidate shadow-scores every packet before the promote/rollback verdict (0 = default 10m)")
	flag.Parse()

	syncMode, err := durable.ParseSyncMode(*walSync)
	if err != nil {
		fatal(err)
	}

	code := make([]byte, 32)
	if *codeHex == "" {
		if _, err := rand.Read(code); err != nil {
			fatal(err)
		}
	} else {
		b, err := hex.DecodeString(*codeHex)
		if err != nil || len(b) != 32 {
			fatal(fmt.Errorf("-code must be 64 hex chars"))
		}
		code = b
	}
	fmt.Printf("fiat-proxy: pairing code %s\n", hex.EncodeToString(code))

	ks, err := keystore.New(rand.Reader)
	if err != nil {
		fatal(err)
	}
	if err := importPairing(ks, code); err != nil {
		fatal(err)
	}
	psk, err := ks.DeriveKey(keystore.PairingAlias, "quic-psk", 32)
	if err != nil {
		fatal(err)
	}

	fmt.Println("fiat-proxy: training humanness validator...")
	validator, _, err := sensors.DefaultValidator(1)
	if err != nil {
		fatal(err)
	}
	clock := simclock.RealClock{}
	reg := obs.NewRegistry()
	if *nDevices < 1 {
		*nDevices = 1
	}
	// The first device keeps the name "plug" so fiat-app's attestations
	// target it; the rest pad out the per-tick batch.
	names := make([]string, *nDevices)
	for i := range names {
		names[i] = "plug"
		if i > 0 {
			names[i] = fmt.Sprintf("plug%d", i+1)
		}
	}
	// buildProxy performs the complete, deterministic proxy construction.
	// With -state-dir it doubles as the recovery constructor: durable.Open
	// rebuilds the same proxy and restores snapshot+WAL state into it,
	// through the zero-copy artifact store: compiled arenas are shared
	// views over the mapped snapshot, one per unique arena.
	buildProxy := func(c simclock.Clock) (*core.Proxy, error) {
		p := core.NewProxy(c, ks, validator, core.Config{
			Bootstrap: *bootstrap, Shards: *shards, Async: *async,
			Artifacts:     artifact.NewStore(),
			PendingWindow: *pendingWindow, PendingMax: *pendingMax,
			Relearn: swap.Options{
				Enabled:      *relearn,
				MissRatio:    *driftMiss,
				MarginDrift:  *driftMargin,
				LockoutBurst: int64(*driftLockouts),
				RelearnFor:   *relearnFor,
				ShadowFor:    *shadowFor,
			},
			Obs: reg,
		})
		for _, name := range names {
			if err := p.AddDevice(core.DeviceConfig{
				Name:       name,
				Classifier: core.RuleClassifier{NotificationSize: 235},
				GraceN:     1,
			}); err != nil {
				return nil, err
			}
		}
		return p, nil
	}

	var (
		proxy *core.Proxy
		mgr   *durable.Manager
	)
	if *stateDir != "" {
		replayed := 0
		mgr, err = durable.Open(durable.Config{
			Dir: *stateDir, Sync: syncMode,
			OnReplay: func(*durable.Op, []core.Decision) { replayed++ },
		}, clock, buildProxy)
		if err != nil {
			fatal(err)
		}
		proxy = mgr.Proxy()
		fmt.Printf("fiat-proxy: durable state in %s (wal-sync=%s, recovered to seq %d, %d op(s) replayed)\n",
			*stateDir, syncMode, mgr.LastSeq(), replayed)
	} else if proxy, err = buildProxy(clock); err != nil {
		fatal(err)
	}
	if *obsAddr != "" {
		serveObs(reg, *obsAddr)
	}
	if *obsInterval > 0 {
		reportRuntime(reg, *obsInterval)
	}
	fmt.Printf("fiat-proxy: %d devices on %d engine shards\n", len(names), proxy.ShardCount())

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := quicfast.NewServer(conn, psk, func(m quicfast.Message) {
		if mgr != nil {
			// The manager write-ahead-logs the raw payload and folds the
			// verdict into durably replayed state; the authenticated-or-not
			// outcome is recovered from the attestation counter.
			before := proxy.StatsSnapshot().AttestationsOK
			if err := mgr.HandleAttestation(m.Payload); err != nil {
				fmt.Printf("[attest] durable log failed: %v\n", err)
			} else if proxy.StatsSnapshot().AttestationsOK > before {
				fmt.Printf("[attest] authenticated and durably logged (0-RTT=%v) — verdict governs manual traffic for %s\n",
					m.ZeroRTT, core.ValidationTTL)
			} else {
				fmt.Printf("[attest] rejected (malformed, stale, or replayed)\n")
			}
			return
		}
		human, err := proxy.HandleAttestation(m.Payload)
		switch {
		case err != nil:
			fmt.Printf("[attest] rejected: %v\n", err)
		case human:
			fmt.Printf("[attest] human verified (0-RTT=%v) — manual traffic authorized for %s\n",
				m.ZeroRTT, core.ValidationTTL)
		default:
			fmt.Printf("[attest] NON-HUMAN window — manual traffic stays blocked\n")
		}
	}, quicfast.WithServerObs(reg))
	go func() {
		if err := srv.Serve(); err != nil {
			fmt.Fprintln(os.Stderr, "fiat-proxy: serve:", err)
		}
	}()
	defer srv.Close()
	fmt.Printf("fiat-proxy: listening on %s; bootstrap %s\n", *listen, *bootstrap)

	// Demo feed: every tick each device heartbeats, and the whole tick is
	// decided as one ProcessBatch fan-out across the shards; an injected
	// on/off command every attack-every. Run fiat-app to authorize one.
	cloud := netip.MustParseAddr("52.1.1.1")
	heartbeat := func() flows.Record {
		return flows.Record{
			Time: clock.Now(), Size: 128, Proto: "tcp", Dir: flows.DirOutbound,
			RemoteIP: cloud, RemoteDomain: "cloud.example",
			LocalPort: 40000, RemotePort: 443, Category: flows.CategoryControl,
		}
	}
	command := func() flows.Record {
		return flows.Record{
			Time: clock.Now(), Size: 235, Proto: "tcp", Dir: flows.DirInbound,
			RemoteIP: cloud, RemoteDomain: "cloud.example",
			LocalPort: 40000, RemotePort: 443, TCPFlags: 0x18, TLSVersion: 0x0303,
			Category: flows.CategoryManual,
		}
	}
	hb := time.NewTicker(700 * time.Millisecond) // off the 1 s quantization boundary
	defer hb.Stop()
	atk := time.NewTicker(*attackEvery)
	defer atk.Stop()
	sweep := time.NewTicker(time.Second)
	defer sweep.Stop()
	var ckpt <-chan time.Time
	if mgr != nil && *checkpointEvery > 0 {
		t := time.NewTicker(*checkpointEvery)
		defer t.Stop()
		ckpt = t.C
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	end := time.After(*duration)

	// processBatch routes one packet batch through the durable log when
	// -state-dir is set, straight to the engine otherwise.
	processBatch := func(batch []core.PacketIn) []core.Decision {
		if mgr != nil {
			ds, err := mgr.ProcessBatch(batch)
			if err != nil {
				fatal(err)
			}
			return ds
		}
		return proxy.ProcessBatch(batch)
	}
	// shutdown is shared by the duration end and the signal path: final
	// stats, MUD export, and — when durable — WAL flush + final checkpoint
	// and the closing obs snapshot.
	shutdown := func() {
		s := proxy.StatsSnapshot()
		fmt.Printf("fiat-proxy: done. packets=%d allowed=%d dropped=%d rule-hits=%d attestations=%d\n",
			s.Packets, s.Allowed, s.Dropped, s.RuleHits, s.AttestationsOK)
		if *mudOut != "" {
			exportMUD(*mudOut, proxy)
		}
		if mgr != nil {
			if err := mgr.Close(); err != nil {
				fatal(fmt.Errorf("durable shutdown: %w", err))
			}
			fmt.Printf("fiat-proxy: durable state flushed (final checkpoint at seq %d)\n", mgr.SnapshotSeq())
			fmt.Println("--- closing obs snapshot ---")
			fmt.Print(reg.Snapshot())
			fmt.Println("--- end closing obs snapshot ---")
		}
	}

	for {
		select {
		case <-sweep.C:
			before := proxy.PendingDepth()
			if mgr != nil {
				if err := mgr.SweepPending(); err != nil {
					fatal(err)
				}
				// Tick batches the deferred WAL fsync under -wal-sync=tick
				// and refreshes the snapshot-age gauge.
				if err := mgr.Tick(); err != nil {
					fatal(err)
				}
				if n := before - proxy.PendingDepth(); n > 0 {
					fmt.Printf("[pending ] %d held decision(s) expired unattested\n", n)
				}
			} else if n := proxy.SweepPending(); n > 0 {
				fmt.Printf("[pending ] %d held decision(s) expired unattested\n", n)
			}
		case <-ckpt: // nil (blocks forever) unless durable
			if err := mgr.Checkpoint(); err != nil {
				fatal(fmt.Errorf("checkpoint: %w", err))
			}
			fmt.Printf("[durable ] checkpoint at seq %d\n", mgr.SnapshotSeq())
		case <-hb.C:
			batch := make([]core.PacketIn, len(names))
			for i, name := range names {
				batch[i] = core.PacketIn{Device: name, Rec: heartbeat()}
			}
			for i, d := range processBatch(batch) {
				if proxy.Bootstrapped() && d.Reason != core.ReasonRuleHit {
					fmt.Printf("[heartbeat] %s: %s (%s)\n", names[i], d.Verdict, d.Reason)
				}
			}
		case <-atk.C:
			ds := processBatch([]core.PacketIn{{Device: "plug", Rec: command()}})
			fmt.Printf("[command ] turn on/off -> %s (%s)\n", ds[0].Verdict, ds[0].Reason)
			if mgr != nil {
				if _, err := mgr.FlushEvent("plug"); err != nil {
					fatal(err)
				}
			} else {
				proxy.FlushEvent("plug")
			}
		case sig := <-sigc:
			fmt.Printf("fiat-proxy: %s — shutting down gracefully\n", sig)
			shutdown()
			return
		case <-end:
			shutdown()
			return
		}
	}
}

// importPairing installs the key both sides derive from the shared code.
func importPairing(ks *keystore.Store, code []byte) error {
	key, err := keystore.DerivePairingKey(code)
	if err != nil {
		return err
	}
	return ks.ImportKey(keystore.PairingAlias, key)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fiat-proxy:", err)
	os.Exit(1)
}

// exportMUD writes the plug's learned rule table as an RFC 8520 profile.
func exportMUD(path string, proxy *core.Proxy) {
	rt, ok := proxy.Rules("plug")
	if !ok {
		fmt.Fprintln(os.Stderr, "fiat-proxy: no rules to export")
		return
	}
	profile := mud.FromRules("plug", "https://fiat.example/plug.json", rt, time.Now())
	data, err := profile.Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiat-proxy: MUD export:", err)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fiat-proxy:", err)
		return
	}
	fmt.Printf("fiat-proxy: exported MUD profile -> %s\n", path)
}
