// Command fiat-analyze runs FIAT's offline traffic analysis over a pcap
// capture: per-device predictability (Classic vs PortLess), the recurring
// flow inventory, and the unpredictable-event breakdown — §2/§3 of the
// paper as a tool. With -attacks it instead runs the seeded adversarial
// scenario corpus against the full proxy and reports the
// detection/false-admission matrix, optionally gated against a committed
// baseline.
//
// Usage:
//
// With -verify-state it instead runs a strictly read-only integrity check
// of a fiat-proxy durable state directory: every snapshot checksum, every
// WAL segment's framing and record CRCs, and sequence continuity — exiting
// nonzero when recovery would fail closed.
//
//	trafficgen -device WyzeCam -hours 6 -out wyze.pcap
//	fiat-analyze -pcap wyze.pcap -device 192.168.1.50
//	fiat-analyze -attacks
//	fiat-analyze -attacks -attacks-baseline internal/adversary/baseline.json
//	fiat-analyze -verify-state /var/lib/fiat/state
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sort"

	"fiat/internal/adversary"
	"fiat/internal/devices"
	"fiat/internal/durable"
	"fiat/internal/events"
	"fiat/internal/flows"
	"fiat/internal/mud"
	"fiat/internal/pcapio"
	"fiat/internal/stats"
)

func main() {
	pcapPath := flag.String("pcap", "", "capture to analyze (required unless -attacks)")
	deviceIP := flag.String("device", "192.168.1.50", "the IoT device's IP in the capture")
	topFlows := flag.Int("top", 12, "recurring flows to list")
	mudOut := flag.String("mud", "", "export the learned rules as an RFC 8520 MUD profile to this path")
	mudURL := flag.String("mud-url", "https://fiat.example/device.json", "mud-url for the exported profile")
	attacks := flag.Bool("attacks", false, "run the adversarial scenario corpus instead of analyzing a capture")
	attacksSeed := flag.Int64("attacks-seed", 1, "scenario seed for -attacks")
	attacksShards := flag.Int("attacks-shards", 1, "proxy shard width for -attacks")
	attacksJSON := flag.String("attacks-json", "", "also write the matrix JSON to this path")
	attacksBaseline := flag.String("attacks-baseline", "", "gate the matrix against this baseline file (\"embedded\" = the committed baseline); exit 1 on regression")
	attacksWrite := flag.String("attacks-write-baseline", "", "write the matrix as the new baseline to this path and exit")
	verifyState := flag.String("verify-state", "", "read-only integrity check of a fiat-proxy durable state directory; exit 1 if recovery would fail closed")
	flag.Parse()
	if *verifyState != "" {
		report := durable.Verify(*verifyState)
		fmt.Print(report.String())
		if report.Err != nil {
			os.Exit(1)
		}
		return
	}
	if *attacks {
		os.Exit(runAttacks(*attacksSeed, *attacksShards, *attacksJSON, *attacksBaseline, *attacksWrite))
	}
	if *pcapPath == "" {
		fmt.Fprintln(os.Stderr, "fiat-analyze: -pcap is required")
		os.Exit(2)
	}
	devAddr, err := netip.ParseAddr(*deviceIP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiat-analyze: bad -device:", err)
		os.Exit(2)
	}

	f, err := os.Open(*pcapPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiat-analyze:", err)
		os.Exit(1)
	}
	defer f.Close()
	r, err := pcapio.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiat-analyze:", err)
		os.Exit(1)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiat-analyze: reading capture:", err)
		os.Exit(1)
	}

	var recs []flows.Record
	skipped := 0
	for _, p := range pkts {
		rec, ok := devices.RecordFromFrame(p, devAddr, nil)
		if !ok {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		fmt.Fprintf(os.Stderr, "fiat-analyze: no packets involve device %s (%d frames skipped)\n", devAddr, skipped)
		os.Exit(1)
	}

	classic := flows.NewAnalyzer(flows.ModeClassic)
	classic.ObserveAll(recs)
	portless := flows.NewAnalyzer(flows.ModePortLess)
	portless.ObserveAll(recs)

	fmt.Printf("capture: %d frames, %d for device %s (%d skipped)\n",
		len(pkts), len(recs), devAddr, skipped)
	span := recs[len(recs)-1].Time.Sub(recs[0].Time)
	fmt.Printf("span: %s (%s .. %s)\n\n", span.Round(1e9),
		recs[0].Time.Format("2006-01-02 15:04:05"), recs[len(recs)-1].Time.Format("15:04:05"))

	tb := &stats.Table{Header: []string{"Definition", "Predictable packets", "Predictable bytes", "Flows", "Recurring"}}
	for _, row := range []struct {
		name string
		a    *flows.Analyzer
	}{{"Classic 6-tuple", classic}, {"PortLess", portless}} {
		tb.Add(row.name, stats.FormatPct(row.a.Fraction()), stats.FormatPct(row.a.FractionBytes()),
			row.a.Buckets(), row.a.PredictableFlows())
	}
	fmt.Println(tb.String())

	// Recurring flow inventory (PortLess), largest first.
	st := portless.MaxIntervals()
	secs := make([]float64, len(st.PerFlow))
	for i, d := range st.PerFlow {
		secs[i] = d.Seconds()
	}
	fmt.Printf("recurring intervals: p50=%.1fs p90=%.1fs max=%.1fs\n\n",
		stats.Percentile(secs, 50), stats.Percentile(secs, 90), stats.Percentile(secs, 100))

	type bucketRow struct {
		key   flows.Key
		count int
	}
	counts := map[flows.Key]int{}
	for _, rec := range recs {
		counts[flows.KeyOf(flows.ModePortLess, rec)]++
	}
	rows := make([]bucketRow, 0, len(counts))
	for k, c := range counts {
		rows = append(rows, bucketRow{key: k, count: c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	fb := &stats.Table{Header: []string{"Flow (PortLess bucket)", "Packets"}}
	for i, row := range rows {
		if i >= *topFlows {
			break
		}
		fb.Add(row.key.String(), row.count)
	}
	fmt.Println(fb.String())

	// Unpredictable events.
	if *mudOut != "" {
		rt := flows.NewRuleTable(flows.ModePortLess)
		for _, rec := range recs {
			rt.Learn(rec)
		}
		rt.Freeze()
		profile := mud.FromRules("device", *mudURL, rt, recs[len(recs)-1].Time)
		data, err := profile.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fiat-analyze: MUD export:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*mudOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fiat-analyze:", err)
			os.Exit(1)
		}
		fmt.Printf("exported RFC 8520 MUD profile (%d learned flows) -> %s\n\n", rt.Rules(), *mudOut)
	}

	evs := events.FromAnalyzer(portless, 0)
	var short, long int
	for _, e := range evs {
		if e.Len() <= 2 {
			short++
		} else {
			long++
		}
	}
	fmt.Printf("unpredictable events: %d total (%d of <=2 packets, %d larger)\n",
		len(evs), short, long)
	if len(evs) > 0 {
		fmt.Println("these events would be classified manual/non-manual by the proxy (§5.4).")
	}
}

// runAttacks executes the adversarial corpus and reports the matrix. Return
// value is the process exit code: 0 clean, 1 on error or baseline
// regression.
func runAttacks(seed int64, shards int, jsonOut, baselinePath, writeBaseline string) int {
	m, results, err := adversary.RunAll(seed, shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiat-analyze:", err)
		return 1
	}
	data, err := m.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiat-analyze:", err)
		return 1
	}

	if writeBaseline != "" {
		if err := os.WriteFile(writeBaseline, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fiat-analyze:", err)
			return 1
		}
		fmt.Printf("wrote baseline matrix (%d attacks, seed %d) -> %s\n",
			len(m.Attacks), seed, writeBaseline)
		return 0
	}

	fmt.Printf("adversarial corpus: %d attacks, seed %d, %d shard(s)\n\n",
		len(m.Attacks), seed, shards)
	fmt.Println(m.Table())
	descs := make(map[string]string, len(results))
	for _, a := range adversary.Catalog() {
		descs[a.Spec().Name] = a.Spec().Description
	}
	for _, s := range m.Attacks {
		fmt.Printf("%s\n  mechanism: %s\n  matrix cell: %s\n  %s\n",
			s.Attack, s.Mechanism, s.Cell, descs[s.Attack])
	}

	if jsonOut != "" {
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fiat-analyze:", err)
			return 1
		}
		fmt.Printf("\nwrote matrix JSON -> %s\n", jsonOut)
	}

	if baselinePath != "" {
		base, err := loadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fiat-analyze:", err)
			return 1
		}
		regressions := adversary.Compare(m, base)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "\nBASELINE REGRESSIONS (%d):\n", len(regressions))
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, " -", r)
			}
			return 1
		}
		fmt.Printf("\nbaseline gate: PASS (%d attacks match or beat %s)\n",
			len(base.Attacks), baselinePath)
	}
	return 0
}

func loadBaseline(path string) (*adversary.Matrix, error) {
	if path == "embedded" {
		return adversary.Baseline()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m adversary.Matrix
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &m, nil
}
