// Command fiat-app runs FIAT's phone-side component: it simulates the user
// touching an IoT companion app (or spyware driving it with -nonhuman),
// builds a signed sensor attestation, and ships it to the proxy over
// quicfast — 0-RTT after the first handshake.
//
// Pair against a running fiat-proxy with its printed code:
//
//	fiat-app -proxy 127.0.0.1:7844 -code <hex> -device plug -n 3
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"fiat/internal/core"
	"fiat/internal/keystore"
	"fiat/internal/quicfast"
	"fiat/internal/sensors"
	"fiat/internal/simclock"
)

func main() {
	proxyAddr := flag.String("proxy", "127.0.0.1:7844", "proxy attestation address")
	codeHex := flag.String("code", "", "pairing code from fiat-proxy (hex, required)")
	device := flag.String("device", "plug", "IoT device the interaction targets")
	count := flag.Int("n", 1, "attestations to send")
	interval := flag.Duration("interval", 2*time.Second, "gap between attestations")
	nonhuman := flag.Bool("nonhuman", false, "simulate spyware driving the app (no touch)")
	seed := flag.Int64("seed", time.Now().UnixNano(), "sensor window seed")
	flag.Parse()

	code, err := hex.DecodeString(*codeHex)
	if err != nil || len(code) != 32 {
		fmt.Fprintln(os.Stderr, "fiat-app: -code must be the proxy's 64-hex-char pairing code")
		os.Exit(2)
	}
	ks, err := keystore.New(rand.Reader)
	if err != nil {
		fatal(err)
	}
	key, err := keystore.DerivePairingKey(code)
	if err != nil {
		fatal(err)
	}
	if err := ks.ImportKey(keystore.PairingAlias, key); err != nil {
		fatal(err)
	}
	psk, err := ks.DeriveKey(keystore.PairingAlias, "quic-psk", 32)
	if err != nil {
		fatal(err)
	}

	raddr, err := net.ResolveUDPAddr("udp", *proxyAddr)
	if err != nil {
		fatal(err)
	}
	conn, err := net.ListenPacket("udp", ":0")
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	cli := quicfast.NewClient(conn, raddr, psk, quicfast.WithTimeout(time.Second))

	app := core.NewClientApp(simclock.RealClock{}, ks)
	appPkg := "com." + *device + ".app"
	app.BindApp(appPkg, *device)
	gen := sensors.NewGenerator(simclock.NewRNG(*seed))

	for i := 0; i < *count; i++ {
		window := gen.Human()
		kind := "human touch"
		if *nonhuman {
			window = gen.NonHuman()
			kind = "NON-HUMAN (spyware)"
		}
		start := time.Now()
		zeroRTT, err := app.SendOverQUIC(cli, appPkg, window)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fiat-app: sent %s attestation for %q in %v (0-RTT=%v)\n",
			kind, *device, time.Since(start).Round(time.Millisecond), zeroRTT)
		if i+1 < *count {
			time.Sleep(*interval)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fiat-app:", err)
	os.Exit(1)
}
