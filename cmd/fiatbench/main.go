// Command fiatbench regenerates the paper's tables and figures from the
// simulated substrates.
//
// Usage:
//
//	fiatbench [-scale quick|full] [-seed N] [all|ablations|<id>...]
//	fiatbench -rulebench [-rulebench-out BENCH_4.json] [-devices N] [-shards N] [-seed N]
//	fiatbench -clfbench [-clfbench-out BENCH_5.json] [-events N] [-shards N] [-seed N]
//	fiatbench -recoverybench [-recoverybench-out BENCH_7.json] [-seed N]
//	fiatbench -soak [-soak-out BENCH_6.json] [-soak-ticks N] [-devices N] [-shards N] [-seed N]
//	fiatbench -coldstart [-coldstart-out BENCH_10.json] [-coldstart-devices 64,256,1024] [-seed N]
//
// Any invocation also accepts -cpuprofile FILE and -memprofile FILE, which
// write pprof CPU and heap profiles covering the run (view them with
// `go tool pprof`). The CPU profile spans everything after flag parsing; the
// heap profile is captured at exit after a final GC.
//
// -rulebench skips the experiments and instead runs the rule-match
// microbenchmark: the legacy mutex-serialized RuleTable.Match path against
// the compiled lock-free CompiledRules.Match path on the same seeded
// workload, writing the comparison (ns/op, ops/sec, allocs/op, speedup) to
// -rulebench-out.
//
// -clfbench likewise runs the event-classification microbenchmark: the
// legacy extract→Transform→Predict path of the trained deployment model
// (BernoulliNB) against the compiled zero-allocation extract→scale→infer
// engine, on the same seeded probe-event corpus, writing the comparison to
// -clfbench-out.
//
// -recoverybench measures the durable-state layer: WAL append cost per
// operation (fsync-batched vs fsync-per-append), cold-restart time against
// the WAL suffix length recovery replays, and the chaos crash matrix — every
// seeded kill point reconciled byte-for-byte against an uninterrupted
// reference run — writing BENCH_7.json.
//
// -coldstart primes a fleet of identically-learning devices under durable
// management, then measures recovery of the resulting v3 snapshot through
// both restore arms — per-device copied decode+recompile versus zero-copy
// artifact views over the mapped snapshot — reporting restart time, retained
// heap, snapshot dedup savings, and the allocation-free warm acquisition
// gate, writing BENCH_10.json. Exits non-zero when a hard gate fails
// (acquisition allocates, arms diverge, or dedup is vacuous).
//
// -soak runs the sustained-load soak of the end-to-end batched engines: a
// randomized three-way differential (sequential vs goroutine-fan-out sharded
// vs ring-fed async pipeline) proving byte-identical decisions, stats,
// metrics, and encoded state across seeds, then a timed phase on a live
// clock measuring sustained throughput, p50/p99/p999 batch latency, alloc/op,
// and the steady-state heap ceiling for the sharded and async engines,
// writing BENCH_6.json. Exits non-zero if the differential diverges or the
// async engine allocates in steady state.
//
// Experiment ids: fig1a fig1b fig1c inspector fig2 ncomplete table2 table3
// table4 table5 table6 table7 delay, plus the ablations
// (ablate-bucketing, ablate-gap, ablate-headn, ablate-bootstrap,
// ablate-transport). With no arguments it runs "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"fiat/internal/chaos"
	"fiat/internal/experiments"
	"fiat/internal/netsim"
	"fiat/internal/report"
)

// startProfiles arms the optional pprof outputs and returns the function
// that flushes them; it must run before any exit so the CPU profile is
// complete.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fiatbench: memprofile:", err)
				return
			}
			runtime.GC() // profile retained heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fiatbench: memprofile:", err)
			}
			f.Close()
		}
	}, nil
}

// parseCounts parses a comma-separated list of positive ints.
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad device count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Int64("seed", 7, "random seed for all corpora")
	htmlOut := flag.String("html", "", "also write the results as a self-contained HTML report")
	showMetrics := flag.Bool("metrics", true, "after the experiments, print the deterministic metrics snapshot of a seeded end-to-end scenario")
	ruleBench := flag.Bool("rulebench", false, "run the legacy-vs-compiled rule-match microbenchmark instead of the experiments")
	ruleBenchOut := flag.String("rulebench-out", "BENCH_4.json", "where -rulebench writes its JSON result")
	benchDevices := flag.Int("devices", 64, "device count for -rulebench")
	benchShards := flag.Int("shards", 8, "shard-worker count for -rulebench/-clfbench")
	clfBench := flag.Bool("clfbench", false, "run the legacy-vs-compiled event-classification microbenchmark instead of the experiments")
	clfBenchOut := flag.String("clfbench-out", "BENCH_5.json", "where -clfbench writes its JSON result")
	benchEvents := flag.Int("events", 512, "probe-event count for -clfbench")
	recoveryBench := flag.Bool("recoverybench", false, "run the durable-state recovery benchmark instead of the experiments")
	recoveryBenchOut := flag.String("recoverybench-out", "BENCH_7.json", "where -recoverybench writes its JSON result")
	soak := flag.Bool("soak", false, "run the sustained-load async-pipeline soak instead of the experiments")
	soakOut := flag.String("soak-out", "BENCH_6.json", "where -soak writes its JSON result")
	soakTicks := flag.Int("soak-ticks", 20000, "measured steady-state batches per engine for -soak")
	coldStart := flag.Bool("coldstart", false, "run the copied-vs-zero-copy cold-restart benchmark instead of the experiments")
	coldStartOut := flag.String("coldstart-out", "BENCH_10.json", "where -coldstart writes its JSON result")
	coldStartDevices := flag.String("coldstart-devices", "64,256,1024", "comma-separated fleet sizes for -coldstart")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	if *ruleBench {
		exit(runRuleBench(*benchDevices, *benchShards, *seed, *ruleBenchOut))
	}
	if *clfBench {
		exit(runClfBench(*benchEvents, *benchShards, *seed, *clfBenchOut))
	}
	if *recoveryBench {
		exit(runRecoveryBench(*seed, *recoveryBenchOut))
	}
	if *soak {
		exit(runSoakBench(*benchDevices, *benchShards, *soakTicks, *seed, *soakOut))
	}
	if *coldStart {
		exit(runColdStartBench(*coldStartDevices, *seed, *coldStartOut))
	}

	var sc experiments.Scale
	switch strings.ToLower(*scaleName) {
	case "quick":
		sc = experiments.Quick(*seed)
	case "full":
		sc = experiments.Full(*seed)
	default:
		fmt.Fprintf(os.Stderr, "fiatbench: unknown scale %q (want quick or full)\n", *scaleName)
		exit(2)
	}

	byID := map[string]func(experiments.Scale) experiments.Result{
		"fig1a":            experiments.Fig1a,
		"fig1b":            experiments.Fig1b,
		"fig1c":            experiments.Fig1c,
		"inspector":        experiments.Inspector,
		"fig2":             experiments.Fig2,
		"ncomplete":        experiments.CompletionN,
		"table2":           experiments.Table2,
		"table3":           experiments.Table3,
		"table4":           experiments.Table4,
		"table5":           experiments.Table5,
		"table6":           experiments.Table6,
		"table7":           experiments.Table7,
		"delay":            experiments.DelayTolerance,
		"ablate-bucketing": experiments.AblationBucketing,
		"ablate-gap":       experiments.AblationGap,
		"ablate-headn":     experiments.AblationHeadN,
		"ablate-bootstrap": experiments.AblationBootstrap,
		"ablate-transport": experiments.AblationTransport,
		"ablate-humanness": experiments.AblationHumanness,
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	start := time.Now()
	var results []experiments.Result
	emit := func(r experiments.Result) {
		fmt.Println(r.String())
		results = append(results, r)
	}
	for _, arg := range args {
		switch arg {
		case "all":
			for _, r := range experiments.All(sc) {
				emit(r)
			}
		case "ablations":
			for _, r := range experiments.Ablations(sc) {
				emit(r)
			}
		default:
			fn, ok := byID[arg]
			if !ok {
				fmt.Fprintf(os.Stderr, "fiatbench: unknown experiment %q\n", arg)
				exit(2)
			}
			emit(fn(sc))
		}
	}
	if *htmlOut != "" {
		page := report.HTML(report.Meta{
			Title:     "FIAT reproduction — regenerated evaluation",
			Scale:     *scaleName,
			Seed:      *seed,
			Generated: time.Now(),
			PaperRef:  "Xiao & Varvello, FIAT: Frictionless Authentication of IoT Traffic, CoNEXT 2022",
		}, results)
		if err := os.WriteFile(*htmlOut, []byte(page), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fiatbench:", err)
			exit(1)
		}
		fmt.Printf("fiatbench: HTML report -> %s\n", *htmlOut)
	}
	if *showMetrics {
		printMetricsSnapshot(*seed)
	}
	fmt.Printf("fiatbench: %d experiment(s), scale=%s, seed=%d, %.1fs\n",
		len(results), *scaleName, *seed, time.Since(start).Seconds())
	stopProfiles()
}

// runRuleBench measures the frozen-rule match path before and after
// compilation and writes the BENCH_4.json comparison.
func runRuleBench(devices, shards int, seed int64, out string) int {
	fmt.Printf("fiatbench: rule-match microbenchmark, %d devices x %d shards, seed=%d\n", devices, shards, seed)
	res := experiments.RuleMatchBench(devices, shards, seed)
	res.Meta = experiments.NewBenchMeta(map[string]string{
		"devices": strconv.Itoa(devices), "shards": strconv.Itoa(shards),
		"seed": strconv.FormatInt(seed, 10),
	})
	fmt.Printf("  legacy   %8.1f ns/op  %12.0f ops/sec  %5.1f allocs/op\n",
		res.Legacy.NsPerOp, res.Legacy.OpsPerSec, res.Legacy.AllocsPerOp)
	fmt.Printf("  compiled %8.1f ns/op  %12.0f ops/sec  %5.1f allocs/op\n",
		res.Compiled.NsPerOp, res.Compiled.OpsPerSec, res.Compiled.AllocsPerOp)
	fmt.Printf("  speedup  %.2fx\n", res.Speedup)
	if err := os.WriteFile(out, res.JSON(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench:", err)
		return 1
	}
	fmt.Printf("fiatbench: rule-match benchmark -> %s\n", out)
	return 0
}

// runColdStartBench primes identical fleets at each size and measures both
// recovery arms, enforcing the hard gates at the CLI.
func runColdStartBench(deviceList string, seed int64, out string) int {
	counts, err := parseCounts(deviceList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench:", err)
		return 2
	}
	fmt.Printf("fiatbench: cold-start benchmark, fleets %v, seed=%d\n", counts, seed)
	res, err := experiments.ColdStartBench(seed, counts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench:", err)
		return 1
	}
	res.Meta = experiments.NewBenchMeta(map[string]string{
		"coldstart-devices": deviceList, "seed": strconv.FormatInt(seed, 10),
	})
	fmt.Printf("  warm acquisition  %g allocs/device\n", res.AcquireAllocs)
	for _, p := range res.Points {
		fmt.Printf("  %5d devices  copied %8.2f ms (%8d KiB heap)  zero-copy %8.2f ms (%8d KiB heap)  %5.2fx  snapshot %d KiB (deduped %d KiB)  arenas=%d refs=%d identical=%v\n",
			p.Devices, p.Copied.RestartMs, p.Copied.HeapDeltaBytes/1024,
			p.ZeroCopy.RestartMs, p.ZeroCopy.HeapDeltaBytes/1024, p.Speedup,
			p.SnapshotBytes/1024, p.DedupSavedBytes/1024, p.UniqueArenas, p.ArenaRefs, p.StateIdentical)
	}
	if err := os.WriteFile(out, res.JSON(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench:", err)
		return 1
	}
	if err := res.Gates(); err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench: cold-start gate FAILED:", err)
		return 1
	}
	fmt.Printf("fiatbench: cold-start benchmark -> %s\n", out)
	return 0
}

// runRecoveryBench measures the durable-state layer and writes the
// BENCH_7.json comparison: append overhead, cold-restart scaling, and the
// crash-reconciliation matrix.
func runRecoveryBench(seed int64, out string) int {
	fmt.Printf("fiatbench: durable-state recovery benchmark, seed=%d\n", seed)
	res, err := experiments.RecoveryBench(seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench:", err)
		return 1
	}
	res.Meta = experiments.NewBenchMeta(map[string]string{"seed": strconv.FormatInt(seed, 10)})
	fmt.Printf("  append (fsync on tick)   %8.1f ns/op  %5.1f allocs/op\n",
		res.AppendBuffered.NsPerOp, res.AppendBuffered.AllocsPerOp)
	fmt.Printf("  append (fsync always)    %8.1f ns/op  %5.1f allocs/op\n",
		res.AppendFsync.NsPerOp, res.AppendFsync.AllocsPerOp)
	fmt.Printf("  append (sweep, no body)  %8.1f ns/op  %5.1f allocs/op\n",
		res.AppendSweep.NsPerOp, res.AppendSweep.AllocsPerOp)
	for _, cr := range res.ColdRestarts {
		fmt.Printf("  cold restart %6d wal ops  %8.2f ms  (%d replayed)\n", cr.WALOps, cr.RestartMs, cr.Replayed)
	}
	for _, c := range res.CrashMatrix {
		fmt.Printf("  crash %-22s crash@%-4d replayed=%-4d resumed=%-4d truncated=%d identical=%v\n",
			c.Point, c.CrashOp, c.Replayed, c.Resumed, c.Truncated, c.Identical)
	}
	if err := os.WriteFile(out, res.JSON(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench:", err)
		return 1
	}
	if !res.Identical() {
		fmt.Fprintln(os.Stderr, "fiatbench: crash matrix reconciliation FAILED")
		return 1
	}
	fmt.Printf("fiatbench: recovery benchmark -> %s\n", out)
	return 0
}

// runSoakBench runs the end-to-end sustained-load soak and writes the
// BENCH_6.json comparison. It enforces the two hard gates at the CLI: the
// three-way differential must be identical, and the async engine must
// sustain zero allocations per steady-state batch.
func runSoakBench(devices, shards, ticks int, seed int64, out string) int {
	mlDevices := devices / 16
	if mlDevices < 1 {
		mlDevices = 1
	}
	ruleDevices := devices - mlDevices
	fmt.Printf("fiatbench: sustained-load soak, %d devices (%d rule + %d ml) x %d shards, %d ticks, seed=%d\n",
		devices, ruleDevices, mlDevices, shards, ticks, seed)
	res, err := experiments.SoakBench(experiments.SoakConfig{
		Seed: seed, Shards: shards, RuleDevices: ruleDevices, MLDevices: mlDevices, Ticks: ticks,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench:", err)
		return 1
	}
	res.Meta = experiments.NewBenchMeta(map[string]string{
		"devices": strconv.Itoa(devices), "shards": strconv.Itoa(shards),
		"soak-ticks": strconv.Itoa(ticks), "seed": strconv.FormatInt(seed, 10),
	})
	fmt.Printf("  differential: %d seeds x %d steps, %d packets/seed, identical=%v\n",
		len(res.Differential.Seeds), res.Differential.Steps, res.Differential.Packets, res.Differential.Identical)
	for _, arm := range []experiments.SoakArm{res.Sharded, res.Async} {
		fmt.Printf("  %-8s %10.1f ns/batch  %12.0f pkts/sec  p99 %8d ns  p999 %8d ns  %5.2f allocs/pkt  steady %g allocs/batch  heap %d KiB\n",
			arm.Engine, arm.NsPerBatch, arm.PktsPerSec, arm.P99BatchNs, arm.P999BatchNs,
			arm.AllocsPerPkt, arm.SteadyStateAllocs, arm.HeapMaxBytes/1024)
		fmt.Printf("  %-8s %10.1f ns/event-batch  %5.2f allocs/event-batch\n",
			arm.Engine, arm.EventNsPerBatch, arm.EventAllocsPerBatch)
	}
	fmt.Printf("  speedup  %.2fx\n", res.Speedup)
	if err := os.WriteFile(out, res.JSON(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench:", err)
		return 1
	}
	if !res.Differential.Identical {
		fmt.Fprintln(os.Stderr, "fiatbench: soak differential FAILED")
		return 1
	}
	if res.Async.SteadyStateAllocs != 0 {
		fmt.Fprintf(os.Stderr, "fiatbench: async steady state allocates (%g allocs/batch, want 0)\n",
			res.Async.SteadyStateAllocs)
		return 1
	}
	fmt.Printf("fiatbench: soak benchmark -> %s\n", out)
	return 0
}

// runClfBench measures the event-classification path of the trained
// deployment model before and after compilation and writes the BENCH_5.json
// comparison.
func runClfBench(eventCount, shards int, seed int64, out string) int {
	fmt.Printf("fiatbench: event-classification microbenchmark, %d events x %d shards, seed=%d\n", eventCount, shards, seed)
	res := experiments.ClassifyBench(eventCount, shards, seed)
	res.Meta = experiments.NewBenchMeta(map[string]string{
		"events": strconv.Itoa(eventCount), "shards": strconv.Itoa(shards),
		"seed": strconv.FormatInt(seed, 10),
	})
	fmt.Printf("  legacy   %8.1f ns/op  %12.0f ops/sec  %5.1f allocs/op\n",
		res.Legacy.NsPerOp, res.Legacy.OpsPerSec, res.Legacy.AllocsPerOp)
	fmt.Printf("  compiled %8.1f ns/op  %12.0f ops/sec  %5.1f allocs/op\n",
		res.Compiled.NsPerOp, res.Compiled.OpsPerSec, res.Compiled.AllocsPerOp)
	fmt.Printf("  speedup  %.2fx\n", res.Speedup)
	if err := os.WriteFile(out, res.JSON(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench:", err)
		return 1
	}
	fmt.Printf("fiatbench: classification benchmark -> %s\n", out)
	return 0
}

// printMetricsSnapshot replays one seeded chaos scenario — burst loss and a
// partition on the attestation path, sharded engine — and prints the
// observability snapshot it leaves behind. The snapshot is deterministic in
// the seed (see internal/chaos), so it doubles as a quick fingerprint of the
// pipeline: two builds printing different bytes here behave differently.
func printMetricsSnapshot(seed int64) {
	res, err := chaos.Run(chaos.Scenario{
		Seed:          seed,
		Shards:        4,
		Duration:      90 * time.Second,
		ManualAt:      []time.Duration{22 * time.Second, 60 * time.Second},
		PendingWindow: 25 * time.Second,
		Burst:         &netsim.GilbertElliott{PGoodBad: 0.15, PBadGood: 0.35, LossGood: 0.05, LossBad: 0.8},
		PartitionAt:   20 * time.Second,
		PartitionFor:  10 * time.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiatbench: metrics scenario:", err)
		return
	}
	fmt.Println("--- metrics snapshot (seeded end-to-end scenario) ---")
	fmt.Print(res.Metrics)
	fmt.Println("--- end metrics snapshot ---")
}
