// Command fiatbench regenerates the paper's tables and figures from the
// simulated substrates.
//
// Usage:
//
//	fiatbench [-scale quick|full] [-seed N] [all|ablations|<id>...]
//
// Experiment ids: fig1a fig1b fig1c inspector fig2 ncomplete table2 table3
// table4 table5 table6 table7 delay, plus the ablations
// (ablate-bucketing, ablate-gap, ablate-headn, ablate-bootstrap,
// ablate-transport). With no arguments it runs "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fiat/internal/experiments"
	"fiat/internal/report"
)

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Int64("seed", 7, "random seed for all corpora")
	htmlOut := flag.String("html", "", "also write the results as a self-contained HTML report")
	flag.Parse()

	var sc experiments.Scale
	switch strings.ToLower(*scaleName) {
	case "quick":
		sc = experiments.Quick(*seed)
	case "full":
		sc = experiments.Full(*seed)
	default:
		fmt.Fprintf(os.Stderr, "fiatbench: unknown scale %q (want quick or full)\n", *scaleName)
		os.Exit(2)
	}

	byID := map[string]func(experiments.Scale) experiments.Result{
		"fig1a":            experiments.Fig1a,
		"fig1b":            experiments.Fig1b,
		"fig1c":            experiments.Fig1c,
		"inspector":        experiments.Inspector,
		"fig2":             experiments.Fig2,
		"ncomplete":        experiments.CompletionN,
		"table2":           experiments.Table2,
		"table3":           experiments.Table3,
		"table4":           experiments.Table4,
		"table5":           experiments.Table5,
		"table6":           experiments.Table6,
		"table7":           experiments.Table7,
		"delay":            experiments.DelayTolerance,
		"ablate-bucketing": experiments.AblationBucketing,
		"ablate-gap":       experiments.AblationGap,
		"ablate-headn":     experiments.AblationHeadN,
		"ablate-bootstrap": experiments.AblationBootstrap,
		"ablate-transport": experiments.AblationTransport,
		"ablate-humanness": experiments.AblationHumanness,
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	start := time.Now()
	var results []experiments.Result
	emit := func(r experiments.Result) {
		fmt.Println(r.String())
		results = append(results, r)
	}
	for _, arg := range args {
		switch arg {
		case "all":
			for _, r := range experiments.All(sc) {
				emit(r)
			}
		case "ablations":
			for _, r := range experiments.Ablations(sc) {
				emit(r)
			}
		default:
			fn, ok := byID[arg]
			if !ok {
				fmt.Fprintf(os.Stderr, "fiatbench: unknown experiment %q\n", arg)
				os.Exit(2)
			}
			emit(fn(sc))
		}
	}
	if *htmlOut != "" {
		page := report.HTML(report.Meta{
			Title:     "FIAT reproduction — regenerated evaluation",
			Scale:     *scaleName,
			Seed:      *seed,
			Generated: time.Now(),
			PaperRef:  "Xiao & Varvello, FIAT: Frictionless Authentication of IoT Traffic, CoNEXT 2022",
		}, results)
		if err := os.WriteFile(*htmlOut, []byte(page), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fiatbench:", err)
			os.Exit(1)
		}
		fmt.Printf("fiatbench: HTML report -> %s\n", *htmlOut)
	}
	fmt.Printf("fiatbench: %d experiment(s), scale=%s, seed=%d, %.1fs\n",
		len(results), *scaleName, *seed, time.Since(start).Seconds())
}
