// Command trafficgen emits synthetic IoT traffic traces as pcap files that
// tcpdump/Wireshark (and the fiat analyzers) can read.
//
// Usage:
//
//	trafficgen -device WyzeCam -hours 24 -manual 5 -out wyze.pcap
//	trafficgen -list
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"fiat/internal/devices"
	"fiat/internal/netsim"
	"fiat/internal/packet"
	"fiat/internal/pcapio"
	"fiat/internal/simclock"
)

func main() {
	deviceName := flag.String("device", "HomeMini", "device profile from the Table 1 testbed")
	hours := flag.Float64("hours", 24, "trace duration in hours")
	manual := flag.Float64("manual", 4, "manual interactions per day")
	routines := flag.Bool("routines", true, "enable the Table 1 automations")
	loc := flag.String("loc", "us", "cloud location: us, de, jp")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "output pcap path (default <device>.pcap)")
	list := flag.Bool("list", false, "list device profiles and exit")
	flag.Parse()

	if *list {
		for _, p := range devices.StandardTestbed() {
			fmt.Printf("%-10s %-14s %-13s site=%s  completion-N=%d\n",
				p.Name, p.Brand, p.Kind, p.Site, p.CompletionN)
		}
		return
	}
	prof := devices.ByName(*deviceName)
	if prof == nil {
		fmt.Fprintf(os.Stderr, "trafficgen: unknown device %q (try -list)\n", *deviceName)
		os.Exit(2)
	}
	location := netsim.LocCloudUS
	switch *loc {
	case "us":
	case "de":
		location = netsim.LocCloudDE
	case "jp":
		location = netsim.LocCloudJP
	default:
		fmt.Fprintln(os.Stderr, "trafficgen: -loc must be us, de, or jp")
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = prof.Name + ".pcap"
	}

	recs := prof.Generate(simclock.NewRNG(*seed), devices.TraceOptions{
		Start:        simclock.Epoch,
		Duration:     time.Duration(*hours * float64(time.Hour)),
		Loc:          location,
		ManualPerDay: *manual,
		Routines:     *routines,
	})

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	w, err := pcapio.NewWriter(f, pcapio.WithNanosecondPrecision())
	if err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
	framer := devices.NewFramer(
		netip.MustParseAddr("192.168.1.50"),
		packet.MAC{2, 0, 0, 0, 0, 0x50},
		packet.MAC{2, 0, 0, 0, 0, 0x01},
	)
	var bytes int
	for _, rec := range recs {
		frame := framer.Frame(rec)
		info := packet.CaptureInfo{Timestamp: rec.Time, CaptureLength: len(frame), Length: len(frame)}
		if err := w.WritePacket(info, frame); err != nil {
			fmt.Fprintln(os.Stderr, "trafficgen:", err)
			os.Exit(1)
		}
		bytes += len(frame)
	}
	fmt.Printf("trafficgen: %s: %d packets, %d bytes over %.1fh -> %s\n",
		prof.Name, len(recs), bytes, *hours, path)
}
