// Quickstart: protect one smart plug with FIAT.
//
// The smallest end-to-end scenario: build a System, pair a phone, let the
// proxy learn the plug's heartbeat during the bootstrap window, then watch
// it admit predictable traffic, block an injected command, and admit the
// same command when a human interaction was attested moments before.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"fiat"
	"fiat/internal/flows"
	"fiat/internal/simclock"
)

func main() {
	clock := simclock.NewVirtual()
	sys, err := fiat.NewSystem(fiat.Options{
		Clock: clock,
		Rand:  rand.New(rand.NewSource(1)), // deterministic demo
		Seed:  7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddSimpleDevice("plug", 235); err != nil {
		log.Fatal(err)
	}
	phone, err := sys.PairPhone()
	if err != nil {
		log.Fatal(err)
	}
	phone.App.BindApp("com.plug.app", "plug")
	fmt.Println("paired phone; protecting device \"plug\" (notification size 235 B)")

	cloud := netip.MustParseAddr("52.1.1.1")
	heartbeat := func() fiat.Record {
		return fiat.Record{
			Time: clock.Now(), Size: 128, Proto: "tcp", Dir: flows.DirOutbound,
			RemoteIP: cloud, RemoteDomain: "iot.teckin.example",
			LocalPort: 40000, RemotePort: 443, Category: flows.CategoryControl,
		}
	}
	command := func() fiat.Record {
		return fiat.Record{
			Time: clock.Now(), Size: 235, Proto: "tcp", Dir: flows.DirInbound,
			RemoteIP: cloud, RemoteDomain: "iot.teckin.example",
			LocalPort: 40000, RemotePort: 443, TCPFlags: 0x18, TLSVersion: 0x0303,
			Category: flows.CategoryManual,
		}
	}

	// 1. Bootstrap: 25 minutes of the plug's MQTT heartbeat.
	fmt.Println("\n[1] bootstrap: learning the plug's heartbeat for 25 minutes...")
	for i := 0; i < 25; i++ {
		sys.Proxy.Process("plug", heartbeat(), "")
		clock.Advance(time.Minute)
	}
	fmt.Printf("    bootstrapped: %v\n", sys.Proxy.Bootstrapped())

	// 2. Predictable traffic is admitted by rule hit.
	d := sys.Proxy.Process("plug", heartbeat(), "")
	fmt.Printf("\n[2] heartbeat after bootstrap -> %s (%s)\n", d.Verdict, d.Reason)

	// 3. An attacker with the stolen account injects "turn off".
	clock.Advance(30 * time.Second)
	d = sys.Proxy.Process("plug", command(), "")
	fmt.Printf("[3] injected command, no human  -> %s (%s)\n", d.Verdict, d.Reason)
	sys.Proxy.FlushEvent("plug")

	// 4. The user opens the app and taps: attestation, then the command.
	clock.Advance(30 * time.Second)
	human, err := phone.Attest(sys, "com.plug.app", phone.Sensors.Human())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[4] phone attests interaction   -> human=%v\n", human)
	clock.Advance(300 * time.Millisecond)
	d = sys.Proxy.Process("plug", command(), "")
	fmt.Printf("    same command, human present -> %s (%s)\n", d.Verdict, d.Reason)

	// 5. The audit log recorded both decisions.
	fmt.Println("\n[5] audit log:")
	for _, e := range sys.Proxy.Log() {
		fmt.Printf("    %s %-8s %-24s (%d pkts)\n",
			e.Time.Format("15:04:05"), e.Verdict, e.Reason, e.Packets)
	}
}
