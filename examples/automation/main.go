// Automation: routines and device-to-device rules (Discussion, "Complex
// Scenarios").
//
// An IFTTT-style engine runs the home's automations. A "goodnight" routine
// has Alexa turn off a smart light: with no phone interaction, FIAT would
// drop that manual-looking traffic — so the engine's device-to-device
// edges are installed as proxy DAG rules, exactly the resolution the paper
// proposes ("adding a rule that allows all the unidirectional traffic from
// Alexa to the smart light"). A rogue device trying the same path is still
// blocked, and a cycle in the rules is rejected.
//
// Run: go run ./examples/automation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"fiat"
	"fiat/internal/flows"
	"fiat/internal/routines"
	"fiat/internal/simclock"
)

func main() {
	clock := simclock.NewVirtual()
	sys, err := fiat.NewSystem(fiat.Options{Clock: clock, Rand: rand.New(rand.NewSource(1)), Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddSimpleDevice("light", 199); err != nil {
		log.Fatal(err)
	}

	cloud := netip.MustParseAddr("52.1.1.1")
	heartbeat := func() fiat.Record {
		return fiat.Record{Time: clock.Now(), Size: 96, Proto: "tcp", Dir: flows.DirOutbound,
			RemoteIP: cloud, RemoteDomain: "bulb.example", LocalPort: 40000, RemotePort: 443,
			Category: flows.CategoryControl}
	}
	lightCommand := func() fiat.Record {
		return fiat.Record{Time: clock.Now(), Size: 199, Proto: "tcp", Dir: flows.DirInbound,
			RemoteIP: cloud, RemoteDomain: "bulb.example", LocalPort: 40000, RemotePort: 443,
			TCPFlags: 0x18, TLSVersion: 0x0303, Category: flows.CategoryManual}
	}
	for i := 0; i < 25; i++ {
		sys.Proxy.Process("light", heartbeat(), "")
		clock.Advance(time.Minute)
	}

	// The automation engine drives device commands; its sink pushes the
	// resulting traffic through the proxy, naming the commanding peer.
	var results []string
	engine := routines.NewEngine(clock, func(f routines.Firing) {
		d := sys.Proxy.Process(f.Action.Device, lightCommand(), f.Action.Source)
		results = append(results, fmt.Sprintf("%s %-28s via %-8s -> %s (%s)",
			f.At.Format("15:04"), f.Rule+"/"+f.Action.Command, orCloud(f.Action.Source), d.Verdict, d.Reason))
		sys.Proxy.FlushEvent(f.Action.Device)
	})
	if err := engine.Add(routines.Rule{
		Name:    "goodnight",
		Trigger: routines.DailyAt{Offset: 22 * time.Hour},
		Actions: []routines.Action{{Device: "light", Command: "turn-off", Source: "Alexa"}},
	}); err != nil {
		log.Fatal(err)
	}
	if err := engine.Add(routines.Rule{
		Name:    "intruder-sim",
		Trigger: routines.DailyAt{Offset: 23 * time.Hour},
		Actions: []routines.Action{{Device: "light", Command: "turn-on", Source: "SmartTV"}},
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("installed automations:")
	for _, r := range engine.Rules() {
		fmt.Println("  " + r)
	}

	// Install the engine's device-to-device edges as DAG rules — but only
	// for the trusted speaker, not the TV.
	fmt.Println("\nDAG rules derived from routines:")
	for _, edge := range engine.DeviceEdges() {
		if edge[0] != "Alexa" {
			fmt.Printf("  %s -> %s: NOT granted (untrusted source)\n", edge[0], edge[1])
			continue
		}
		if err := sys.Proxy.DAG().Allow(edge[0], edge[1]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %s: granted\n", edge[0], edge[1])
	}
	// The rule set must stay acyclic.
	if err := sys.Proxy.DAG().Allow("light", "Alexa"); err != nil {
		fmt.Printf("  light -> Alexa: rejected (%v)\n", err)
	}

	// Run two days of automations.
	clock.Advance(48 * time.Hour)
	fmt.Println("\nautomation traffic through FIAT:")
	for _, r := range results {
		fmt.Println("  " + r)
	}
}

func orCloud(s string) string {
	if s == "" {
		return "cloud"
	}
	return s
}
