// Attacks: FIAT against its §5.1 threat model.
//
// Four adversaries attack a FIAT-protected plug:
//
//  1. Account compromise — the attacker owns the vendor account and sends
//     commands from the cloud. No interaction on a paired phone exists, so
//     the manual-classified traffic is dropped; repeats trip the lockout.
//  2. LAN intruder — inside the WiFi, the attacker replays a captured 0-RTT
//     attestation datagram byte-for-byte. The transport's anti-replay state
//     rejects it (measured over real UDP sockets).
//  3. Spyware without OS access — drives the companion app with no physical
//     touch. The attestation authenticates but its IMU window fails the
//     humanness model.
//  4. Synchronized piggyback — the Discussion's residual attack: inject
//     while the victim is genuinely touching the app. This succeeds, as the
//     paper concedes, and the audit log still records it.
//
// Run: go run ./examples/attacks
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/netip"
	"time"

	"fiat"
	"fiat/internal/flows"
	"fiat/internal/quicfast"
	"fiat/internal/sensors"
	"fiat/internal/simclock"
)

func main() {
	clock := simclock.NewVirtual()
	sys, err := fiat.NewSystem(fiat.Options{Clock: clock, Rand: rand.New(rand.NewSource(1)), Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddSimpleDevice("plug", 235); err != nil {
		log.Fatal(err)
	}
	phone, err := sys.PairPhone()
	if err != nil {
		log.Fatal(err)
	}
	phone.App.BindApp("com.plug.app", "plug")

	cloud := netip.MustParseAddr("52.1.1.1")
	command := func() fiat.Record {
		return fiat.Record{
			Time: clock.Now(), Size: 235, Proto: "tcp", Dir: flows.DirInbound,
			RemoteIP: cloud, RemoteDomain: "iot.teckin.example",
			LocalPort: 40000, RemotePort: 443, TCPFlags: 0x18, TLSVersion: 0x0303,
			Category: flows.CategoryManual,
		}
	}
	// Bootstrap on heartbeats.
	for i := 0; i < 25; i++ {
		sys.Proxy.Process("plug", fiat.Record{
			Time: clock.Now(), Size: 128, Proto: "tcp", Dir: flows.DirOutbound,
			RemoteIP: cloud, RemoteDomain: "iot.teckin.example",
			LocalPort: 40000, RemotePort: 443, Category: flows.CategoryControl,
		}, "")
		clock.Advance(time.Minute)
	}

	fmt.Println("=== attack 1: account compromise, repeated injections ===")
	for i := 0; i < 3; i++ {
		d := sys.Proxy.Process("plug", command(), "")
		fmt.Printf("  injection %d -> %s (%s)\n", i+1, d.Verdict, d.Reason)
		sys.Proxy.FlushEvent("plug")
		clock.Advance(5 * time.Second)
	}
	fmt.Printf("  device locked pending user review: %v\n\n", sys.Proxy.Locked("plug"))
	sys.Proxy.Unlock("plug")

	fmt.Println("=== attack 2: LAN intruder replays a captured 0-RTT attestation ===")
	replayDemo()

	fmt.Println("=== attack 3: spyware drives the app, no touch ===")
	human, err := phone.Attest(sys, "com.plug.app", noTouchWindow())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  attestation authenticated, humanness = %v\n", human)
	d := sys.Proxy.Process("plug", command(), "")
	fmt.Printf("  synchronized command -> %s (%s)\n\n", d.Verdict, d.Reason)
	sys.Proxy.FlushEvent("plug")
	sys.Proxy.Unlock("plug")
	clock.Advance(time.Minute)

	fmt.Println("=== attack 4: piggyback on a genuine interaction (known limitation) ===")
	if _, err := phone.Attest(sys, "com.plug.app", phone.Sensors.Human()); err != nil {
		log.Fatal(err)
	}
	clock.Advance(200 * time.Millisecond)
	d = sys.Proxy.Process("plug", command(), "")
	fmt.Printf("  attacker's command during the victim's touch -> %s (%s)\n", d.Verdict, d.Reason)
	fmt.Printf("  ...but the audit log kept the evidence: %d entries\n", len(sys.Proxy.Log()))
}

// noTouchWindow returns a resting-device IMU window (spyware cannot move
// the phone).
func noTouchWindow() sensors.Window {
	gen := sensors.NewGenerator(simclock.NewRNG(55))
	gen.BumpProb = 0
	return gen.NonHuman()
}

// replayDemo runs the real quicfast anti-replay check over loopback UDP.
func replayDemo() {
	psk := []byte("attack-demo-pre-shared-key-32b!!")
	sconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	delivered := 0
	srv := quicfast.NewServer(sconn, psk, func(quicfast.Message) { delivered++ })
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	cconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer cconn.Close()
	cli := quicfast.NewClient(cconn, sconn.LocalAddr(), psk, quicfast.WithTimeout(500*time.Millisecond))
	if err := cli.Handshake(); err != nil {
		log.Fatal(err)
	}
	pkt, err := cli.RawZeroRTTDatagram([]byte("open-the-garage"))
	if err != nil {
		log.Fatal(err)
	}
	_ = cli.Inject(pkt) // the victim's real send, captured by the intruder
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 3; i++ {
		_ = cli.Inject(pkt) // byte-identical replays
	}
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("  original delivered: %d; replays rejected by anti-replay state: %d\n\n",
		delivered, srv.Replays())
}
