// Smarthome: a full day of a 10-device home behind FIAT.
//
// The Table 1 testbed devices generate a day of control, routine, and
// manual traffic. The proxy learns rules in its bootstrap window, per-device
// BernoulliNB classifiers are trained on a prior observation trace, and the
// phone attests each genuine interaction moments before its traffic. Five
// attack commands (stolen-account injections, no human present) land during
// the day. The report shows what FIAT admitted, what it blocked, and why.
//
// Run: go run ./examples/smarthome
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"fiat"
	"fiat/internal/core"
	"fiat/internal/dataset"
	"fiat/internal/devices"
	"fiat/internal/flows"
	"fiat/internal/netsim"
	"fiat/internal/simclock"
)

func main() {
	clock := simclock.NewVirtual()
	sys, err := fiat.NewSystem(fiat.Options{
		Clock: clock,
		Rand:  rand.New(rand.NewSource(1)),
		Seed:  7,
	})
	if err != nil {
		log.Fatal(err)
	}
	phone, err := sys.PairPhone()
	if err != nil {
		log.Fatal(err)
	}

	// Train classifiers on a week of prior observation, register devices.
	fmt.Println("training per-device classifiers on a week of observation traffic...")
	training := dataset.Testbed(dataset.TestbedOptions{Days: 7, ManualPerDay: 6, Seed: 41})
	for _, p := range devices.StandardTestbed() {
		if p.SimpleRule {
			if err := sys.AddSimpleDevice(p.Name, p.NotificationSize); err != nil {
				log.Fatal(err)
			}
		} else {
			tr, _ := dataset.FindTrace(training, p.Name+"-US")
			if err := sys.AddMLDevice(p.Name, tr.Events(flows.ModePortLess), 5); err != nil {
				log.Fatal(err)
			}
		}
		phone.App.BindApp("com."+p.Name+".app", p.Name)
	}

	// The day under protection.
	type timed struct {
		device string
		rec    flows.Record
		attack bool
	}
	var timeline []timed
	dayRNG := simclock.NewRNG(99)
	for _, p := range devices.StandardTestbed() {
		recs := p.Generate(dayRNG.Fork(p.Name), devices.TraceOptions{
			Start: simclock.Epoch, Duration: 24 * time.Hour,
			Loc: netsim.LocCloudUS, ManualPerDay: 4, Routines: true,
		})
		for _, r := range recs {
			timeline = append(timeline, timed{device: p.Name, rec: r})
		}
	}
	// Five attack injections against the plug and the camera.
	for i, target := range []string{"SP10", "SP10", "WyzeCam", "WP3", "Nest-E"} {
		p := devices.ByName(target)
		at := simclock.Epoch.Add(time.Duration(3+5*i) * time.Hour)
		for _, r := range p.ScriptedOps(dayRNG.Fork(fmt.Sprintf("attack%d", i)), 1, netsim.LocCloudUS, at) {
			timeline = append(timeline, timed{device: target, rec: r, attack: true})
		}
	}
	sort.Slice(timeline, func(i, j int) bool { return timeline[i].rec.Time.Before(timeline[j].rec.Time) })

	// Replay the day. Before each genuine manual event the user touches the
	// companion app, so an attestation precedes the traffic.
	lastManual := map[string]time.Time{}
	var attacksBlocked, attacksSucceeded, manualBlocked, manualAllowed int
	for _, ev := range timeline {
		clock.AdvanceTo(ev.rec.Time)
		if !ev.attack && ev.rec.Category == flows.CategoryManual &&
			ev.rec.Time.Sub(lastManual[ev.device]) > 5*time.Second {
			lastManual[ev.device] = ev.rec.Time
			if _, err := phone.Attest(sys, "com."+ev.device+".app", phone.Sensors.Human()); err != nil {
				log.Fatal(err)
			}
		}
		d := sys.Proxy.Process(ev.device, ev.rec, "")
		switch {
		case ev.attack && d.Verdict == fiat.Drop:
			attacksBlocked++
		case ev.attack && d.Verdict == fiat.Allow && d.Reason != core.ReasonBootstrap:
			attacksSucceeded++
		case ev.rec.Category == flows.CategoryManual && d.Verdict == fiat.Drop:
			manualBlocked++
		case ev.rec.Category == flows.CategoryManual && d.Verdict == fiat.Allow:
			manualAllowed++
		}
	}

	s := sys.Proxy.Stats
	fmt.Printf("\n=== one day, 10 devices, %d packets ===\n", s.Packets)
	fmt.Printf("allowed %d (%.1f%%), dropped %d\n",
		s.Allowed, 100*float64(s.Allowed)/float64(s.Packets), s.Dropped)
	fmt.Printf("rule hits (predictable): %d\n", s.RuleHits)
	fmt.Printf("events classified: %d manual, %d non-manual\n", s.EventsManual, s.EventsNonManual)
	fmt.Printf("attestations processed: %d\n", s.AttestationsOK)
	fmt.Printf("\nuser experience: %d manual packets admitted, %d blocked (false positives)\n",
		manualAllowed, manualBlocked)
	fmt.Printf("security:        %d/%d attack packets blocked\n",
		attacksBlocked, attacksBlocked+attacksSucceeded)
	fmt.Printf("audit log entries: %d (sealed in the proxy enclave)\n", len(sys.Proxy.Log()))
	if sealed, err := sys.Proxy.SealedLog(); err == nil {
		fmt.Printf("sealed log size: %d bytes\n", len(sealed))
	}
}
