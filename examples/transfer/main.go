// Transfer: ship a classifier trained in one country to another (§4.3).
//
// The paper's production vision is "one model per IoT device and software
// version which is downloaded and applied automatically" — which only works
// if a model trained at location X holds at location Y, where the device
// talks to different cloud IPs and domains. This example trains the
// deployed BernoulliNB on US traffic, evaluates it on traffic captured
// behind Japan and Germany VPN exits, and contrasts it with the
// location-bound predictability rules (which the paper says cannot be
// transferred).
//
// Run: go run ./examples/transfer
package main

import (
	"fmt"
	"log"

	"fiat/internal/core"
	"fiat/internal/dataset"
	"fiat/internal/flows"
	"fiat/internal/ml"
	"fiat/internal/netsim"
)

func main() {
	traces := dataset.Testbed(dataset.TestbedOptions{Days: 7, ManualPerDay: 6, Seed: 7})

	for _, dev := range []string{"HomeMini", "WyzeCam"} {
		us, _ := dataset.FindTrace(traces, dev+"-US")
		fmt.Printf("=== %s: train on US, deploy elsewhere ===\n", dev)
		clf, err := core.TrainMLClassifier(us.Events(flows.ModePortLess), nil)
		if err != nil {
			log.Fatal(err)
		}
		for _, loc := range []struct {
			name string
			l    netsim.Location
		}{{"US (in-domain)", netsim.LocCloudUS}, {"Japan", netsim.LocCloudJP}, {"Germany", netsim.LocCloudDE}} {
			suffix := map[netsim.Location]string{
				netsim.LocCloudUS: "-US", netsim.LocCloudJP: "-JP", netsim.LocCloudDE: "-DE",
			}[loc.l]
			tr, ok := dataset.FindTrace(traces, dev+suffix)
			if !ok {
				continue
			}
			evs := tr.Events(flows.ModePortLess)
			var yTrue, yPred []int
			for _, e := range evs {
				isManual := 0
				if e.Category == flows.CategoryManual {
					isManual = 1
				}
				got := 0
				if clf.IsManual(e) {
					got = 1
				}
				yTrue = append(yTrue, isManual)
				yPred = append(yPred, got)
			}
			prf := ml.ClassPRF(yTrue, yPred, 1)
			fmt.Printf("  %-15s events=%3d  manual P=%.2f R=%.2f F1=%.2f\n",
				loc.name, len(evs), prf.Precision, prf.Recall, prf.F1)
		}

		// The predictability rules, in contrast, are IP/domain-bound: rules
		// learned in the US miss almost everything behind a VPN exit.
		usRules := flows.NewRuleTable(flows.ModePortLess)
		for _, r := range us.Records {
			usRules.Learn(r)
		}
		usRules.Freeze()
		for _, suffix := range []string{"-US", "-JP"} {
			tr, _ := dataset.FindTrace(traces, dev+suffix)
			hits, total := 0, 0
			for _, r := range tr.Records {
				if r.Category != flows.CategoryControl {
					continue
				}
				total++
				if usRules.Match(r) {
					hits++
				}
			}
			fmt.Printf("  US-learned rules on %s control traffic: %d/%d hits (%.1f%%)\n",
				suffix[1:], hits, total, 100*float64(hits)/float64(total))
		}
		fmt.Println()
	}
	fmt.Println("conclusion: the event classifier transfers across locations; the")
	fmt.Println("predictability rules do not (they are re-learned per home, §4.3).")
}
